package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// Small shared table fixture: 4 temperatures x 5 targets.
var (
	tblOnce sync.Once
	tbl     *Table
	tblErr  error
)

func testTable(t *testing.T) *Table {
	t.Helper()
	f := niagaraFixture(t)
	tblOnce.Do(func() {
		tbl, tblErr = GenerateTable(context.Background(), TableSpec{
			Chip:     f.chip,
			Window:   f.window,
			TMax:     100,
			TStarts:  []float64{47, 67, 87, 100},
			FTargets: []float64{200e6, 400e6, 600e6, 800e6, 1000e6},
		})
	})
	if tblErr != nil {
		t.Fatal(tblErr)
	}
	return tbl
}

func TestGenerateTableShape(t *testing.T) {
	tb := testTable(t)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.Stats.Solves != 20 {
		t.Fatalf("Solves = %d, want 20", tb.Stats.Solves)
	}
	if tb.Stats.Feasible == 0 || tb.Stats.Feasible == tb.Stats.Solves {
		t.Fatalf("expected a mix of feasible and infeasible entries, got %d/%d",
			tb.Stats.Feasible, tb.Stats.Solves)
	}
	if tb.NumCores != 8 || tb.FMax != 1e9 || tb.Variant != "variable" {
		t.Fatalf("metadata wrong: %+v", tb)
	}
}

// Feasibility must be monotone along both axes: anything feasible at a
// hot start is feasible at a cooler one, and anything feasible at a
// high target is feasible at a lower one.
func TestTableFeasibilityMonotone(t *testing.T) {
	tb := testTable(t)
	for ti := range tb.TStarts {
		for fi := range tb.FTargets {
			if !tb.Entries[ti][fi].Feasible {
				continue
			}
			for cooler := 0; cooler < ti; cooler++ {
				if !tb.Entries[cooler][fi].Feasible {
					t.Errorf("feasible at %g°C but not at cooler %g°C (target %g MHz)",
						tb.TStarts[ti], tb.TStarts[cooler], tb.FTargets[fi]/1e6)
				}
			}
			for lower := 0; lower < fi; lower++ {
				if !tb.Entries[ti][lower].Feasible {
					t.Errorf("feasible at %g MHz but not at lower %g MHz (tstart %g°C)",
						tb.FTargets[fi]/1e6, tb.FTargets[lower]/1e6, tb.TStarts[ti])
				}
			}
		}
	}
}

// Every stored feasible entry upholds the guarantee.
func TestTableEntriesRespectTMax(t *testing.T) {
	tb := testTable(t)
	for ti := range tb.TStarts {
		for fi := range tb.FTargets {
			e := tb.Entries[ti][fi]
			if e.Feasible && e.PeakTemp > tb.TMax+0.01 {
				t.Errorf("entry (%g°C, %g MHz): peak %.3f > tmax",
					tb.TStarts[ti], tb.FTargets[fi]/1e6, e.PeakTemp)
			}
		}
	}
}

// Supported frequency decreases as the starting temperature rises —
// the shape of the paper's Fig. 9.
func TestTableMaxSupportedFreqDecreases(t *testing.T) {
	tb := testTable(t)
	prev := math.Inf(1)
	for _, ts := range tb.TStarts {
		cur := tb.MaxSupportedFreq(ts)
		if cur > prev+1e6 {
			t.Fatalf("supported frequency rose with temperature: %.0f -> %.0f MHz at %g°C",
				prev/1e6, cur/1e6, ts)
		}
		prev = cur
	}
}

func TestTableLookupSemantics(t *testing.T) {
	tb := testTable(t)
	// Exact hit.
	e, ok := tb.Lookup(47, 400e6)
	if !ok || e.AvgFreq < 400e6-1e6 {
		t.Fatalf("exact lookup failed: %+v ok=%v", e, ok)
	}
	// Between rows: must round the temperature up (conservative).
	eUp, ok := tb.Lookup(55, 400e6)
	if !ok {
		t.Fatal("lookup between rows failed")
	}
	e67, _ := tb.Lookup(67, 400e6)
	if math.Abs(eUp.AvgFreq-e67.AvgFreq) > 1e3 {
		t.Fatalf("55°C lookup did not use 67°C row: %v vs %v", eUp.AvgFreq, e67.AvgFreq)
	}
	// Unsupportable target falls back to the next lower feasible column.
	eHot, ok := tb.Lookup(100, 1000e6)
	if ok && eHot.AvgFreq >= 1000e6 {
		t.Fatalf("1000 MHz at 100°C should not be supportable, got %v", eHot.AvgFreq)
	}
	// Above-grid temperature clamps to the hottest row.
	eClamp, okClamp := tb.Lookup(140, 400e6)
	eLast, okLast := tb.Lookup(100, 400e6)
	if okClamp != okLast || (okClamp && math.Abs(eClamp.AvgFreq-eLast.AvgFreq) > 1e3) {
		t.Fatalf("above-grid clamp mismatch: %v/%v vs %v/%v", eClamp, okClamp, eLast, okLast)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := testTable(t)
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TMax != tb.TMax || back.NumCores != tb.NumCores || len(back.Entries) != len(tb.Entries) {
		t.Fatalf("round trip metadata mismatch")
	}
	for ti := range tb.Entries {
		for fi := range tb.Entries[ti] {
			a, b := tb.Entries[ti][fi], back.Entries[ti][fi]
			if a.Feasible != b.Feasible || math.Abs(a.AvgFreq-b.AvgFreq) > 1 {
				t.Fatalf("entry (%d,%d) drifted: %+v vs %+v", ti, fi, a, b)
			}
		}
	}
}

func TestReadTableJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadTableJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Structurally broken: entries shape mismatch.
	if _, err := ReadTableJSON(strings.NewReader(
		`{"tmax":100,"fmax":1e9,"num_cores":8,"tstarts":[50,60],"ftargets":[1e8],"entries":[[{"feasible":false}]]}`,
	)); err == nil {
		t.Fatal("misshapen table accepted")
	}
}

func TestTableSpecValidate(t *testing.T) {
	f := niagaraFixture(t)
	good := TableSpec{
		Chip: f.chip, Window: f.window, TMax: 100,
		TStarts: []float64{50}, FTargets: []float64{1e8},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []TableSpec{
		{Chip: f.chip, Window: f.window, TMax: 100, TStarts: nil, FTargets: []float64{1e8}},
		{Chip: f.chip, Window: f.window, TMax: 100, TStarts: []float64{60, 50}, FTargets: []float64{1e8}},
		{Chip: f.chip, Window: f.window, TMax: 100, TStarts: []float64{50}, FTargets: []float64{2e9}},
		{Chip: f.chip, Window: f.window, TMax: 100, TStarts: []float64{50}, FTargets: []float64{2e8, 1e8}},
	}
	for i, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("case %d: invalid table spec accepted", i)
		}
	}
	if _, err := GenerateTable(context.Background(), bad[0]); err == nil {
		t.Error("GenerateTable accepted invalid spec")
	}
}

func TestControllerDecisions(t *testing.T) {
	tb := testTable(t)
	c, err := NewController(tb)
	if err != nil {
		t.Fatal(err)
	}
	if c.Table() != tb {
		t.Fatal("Table accessor broken")
	}
	// Normal decision.
	d := c.Decide(50, 400e6)
	if d.Idle || len(d.Freqs) != 8 {
		t.Fatalf("decision = %+v", d)
	}
	if d.AvgFreq < 400e6-1e6 {
		t.Fatalf("avg %v below requirement", d.AvgFreq)
	}
	// Unsupportable requirement gets downgraded, not refused.
	d = c.Decide(100, 1000e6)
	if d.Idle {
		t.Fatal("controller idled where a lower feasible point exists")
	}
	if !d.Downgraded {
		t.Fatalf("expected downgrade at (100°C, 1000 MHz): %+v", d)
	}
	// Negative requirement is clamped.
	d = c.Decide(50, -5)
	if d.Idle {
		t.Fatal("negative requirement should clamp to the lowest column")
	}
	// NaN inputs idle safely.
	d = c.Decide(math.NaN(), 400e6)
	if !d.Idle {
		t.Fatal("NaN temperature must idle")
	}
	for _, f := range d.Freqs {
		if f != 0 {
			t.Fatal("idle decision must command zero frequency")
		}
	}
}

func TestNewControllerRejects(t *testing.T) {
	if _, err := NewController(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewController(&Table{}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestGenerateTableUniformVariant(t *testing.T) {
	f := niagaraFixture(t)
	tb, err := GenerateTable(context.Background(), TableSpec{
		Chip:     f.chip,
		Window:   f.window,
		TMax:     100,
		TStarts:  []float64{47, 87},
		FTargets: []float64{300e6, 600e6},
		Variant:  VariantUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range tb.Entries {
		for fi := range tb.Entries[ti] {
			e := tb.Entries[ti][fi]
			if !e.Feasible {
				continue
			}
			for j := 1; j < len(e.Freqs); j++ {
				if math.Abs(e.Freqs[j]-e.Freqs[0]) > 1e3 {
					t.Fatalf("uniform table entry non-uniform: %v", e.Freqs)
				}
			}
		}
	}
}

// DefaultFTargets used to accumulate f += 0.05*fmax, so rounding could
// change the grid length for unlucky fmax values. The index-based grid
// must always be exactly 20 points ending exactly at fmax.
func TestDefaultFTargetsExact(t *testing.T) {
	for _, fmax := range []float64{1e9, 0.9e9, 750e6, 1.1e9, 3.33e9, 1} {
		grid := DefaultFTargets(fmax)
		if len(grid) != 20 {
			t.Fatalf("fmax %g: %d points, want 20", fmax, len(grid))
		}
		if grid[len(grid)-1] != fmax {
			t.Fatalf("fmax %g: last point %g != fmax", fmax, grid[len(grid)-1])
		}
		for i := 1; i < len(grid); i++ {
			if grid[i] <= grid[i-1] {
				t.Fatalf("fmax %g: grid not strictly ascending at %d", fmax, i)
			}
		}
	}
}

func TestTableSpecCacheKey(t *testing.T) {
	f := niagaraFixture(t)
	base := func() TableSpec {
		return TableSpec{
			Chip: f.chip, Window: f.window, TMax: 100,
			TStarts: []float64{47, 67}, FTargets: []float64{2e8, 4e8},
		}
	}
	a, b := base(), base()
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("identical specs produced different keys")
	}
	// Workers changes cost, not content: same key.
	b.Workers = 3
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("Workers leaked into the cache key")
	}
	distinct := []func(*TableSpec){
		func(s *TableSpec) { s.TMax = 95 },
		func(s *TableSpec) { s.Variant = VariantUniform },
		func(s *TableSpec) { s.TStarts = []float64{47, 87} },
		func(s *TableSpec) { s.FTargets = []float64{2e8, 4e8, 6e8} },
		func(s *TableSpec) { s.GradWeight = 2 },
		func(s *TableSpec) { s.GradStride = 3 },
		func(s *TableSpec) { s.ConstrainAllBlocks = true },
	}
	seen := map[string]int{a.CacheKey(): -1}
	for i, mutate := range distinct {
		s := base()
		mutate(&s)
		k := s.CacheKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutation %d collides with %d", i, prev)
		}
		seen[k] = i
	}
}

func TestGenerateTableCancelled(t *testing.T) {
	f := niagaraFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateTable(ctx, TableSpec{
		Chip: f.chip, Window: f.window, TMax: 100,
		TStarts: []float64{47, 67, 87}, FTargets: []float64{2e8, 4e8, 6e8},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
