package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"protemp/internal/linalg"
	"protemp/internal/power"
	"protemp/internal/solver"
	"protemp/internal/thermal"
)

// TableSpec drives Phase-1 table generation (the paper's Fig. 3): the
// convex program is solved at every (TStart, FTarget) grid point and
// the resulting frequency vectors are stored for run-time lookup.
type TableSpec struct {
	Chip    *power.Chip
	Window  *thermal.WindowResponse
	TMax    float64
	TStarts []float64 // ascending °C grid of starting temperatures
	// FTargets is the ascending Hz grid of required average frequencies.
	FTargets []float64
	Variant  Variant
	// GradWeight / GradStride forward to Spec for VariantGradient.
	GradWeight float64
	GradStride int
	// Workers bounds parallel solves; zero means GOMAXPROCS. The sweep
	// parallelizes over TStart rows (each row is one warm-start chain),
	// so effective parallelism is additionally capped at len(TStarts).
	Workers int
	// ConstrainAllBlocks forwards to Spec.
	ConstrainAllBlocks bool
	// Observer, if non-nil, is invoked after every grid-point solve with
	// sweep progress. Calls are serialized but may come from any worker
	// goroutine; a slow observer slows the sweep. Like Workers it
	// changes cost, not content, so it is excluded from CacheKey.
	Observer SweepObserver
}

// SweepProgress reports one completed grid point of a Phase-1 sweep.
type SweepProgress struct {
	// Done counts completed points, Total the full grid size.
	Done, Total int
	// TI/FI locate the point; TStart (°C) and FTarget (Hz) are its
	// coordinates.
	TI, FI  int
	TStart  float64
	FTarget float64
	// Feasible reports the point's outcome; Warm whether the solve was
	// carried by a neighbor-seeded warm start.
	Feasible bool
	Warm     bool
	// NewtonIters is the point's Newton-iteration cost; Elapsed its
	// solve wall time.
	NewtonIters int
	Elapsed     time.Duration
}

// SweepObserver receives per-point progress during GenerateTable.
type SweepObserver func(SweepProgress)

// DefaultTStarts is the paper's starting-temperature sweep (Figs. 9-10
// run 27 °C to 97 °C in 10 °C steps) extended to the 100 °C limit so
// run-time round-up lookups always have a safe row.
func DefaultTStarts() []float64 {
	return []float64{27, 37, 47, 57, 67, 77, 87, 97, 100}
}

// DefaultFTargets returns the paper's 5%-of-fmax granularity target
// grid (20 points ending exactly at fmax; 50 MHz steps on the 1 GHz
// Niagara). Stepping is index-based so the grid length cannot drift
// with float accumulation.
func DefaultFTargets(fmax float64) []float64 {
	const points = 20
	out := make([]float64, points)
	for i := 1; i <= points; i++ {
		out[i-1] = float64(i) / points * fmax
	}
	return out
}

// Validate checks the table spec.
func (ts *TableSpec) Validate() error {
	probe := Spec{
		Chip: ts.Chip, Window: ts.Window, TMax: ts.TMax,
		Variant: ts.Variant, GradWeight: ts.GradWeight, GradStride: ts.GradStride,
	}
	if err := probe.Validate(); err != nil {
		return err
	}
	if len(ts.TStarts) == 0 || len(ts.FTargets) == 0 {
		return fmt.Errorf("core: empty table grid (%d temps, %d freqs)", len(ts.TStarts), len(ts.FTargets))
	}
	if !sort.Float64sAreSorted(ts.TStarts) {
		return fmt.Errorf("core: TStarts not ascending")
	}
	if !sort.Float64sAreSorted(ts.FTargets) {
		return fmt.Errorf("core: FTargets not ascending")
	}
	fmax := ts.Chip.FMax()
	for _, f := range ts.FTargets {
		if f < 0 || f > fmax {
			return fmt.Errorf("core: FTarget %g outside [0, %g]", f, fmax)
		}
	}
	return nil
}

// Entry is one stored frequency assignment.
type Entry struct {
	Feasible   bool      `json:"feasible"`
	Freqs      []float64 `json:"freqs,omitempty"` // Hz per core
	AvgFreq    float64   `json:"avg_freq,omitempty"`
	TotalPower float64   `json:"total_power,omitempty"`
	PeakTemp   float64   `json:"peak_temp,omitempty"`
	TGrad      float64   `json:"tgrad,omitempty"`
}

// Table is the Phase-1 output (the paper's Fig. 4): Entries[ti][fi]
// holds the assignment for TStarts[ti] and FTargets[fi].
type Table struct {
	TMax     float64    `json:"tmax"`
	FMax     float64    `json:"fmax"`
	NumCores int        `json:"num_cores"`
	Variant  string     `json:"variant"`
	TStarts  []float64  `json:"tstarts"`
	FTargets []float64  `json:"ftargets"`
	Entries  [][]Entry  `json:"entries"`
	Stats    TableStats `json:"stats"`
}

// TableStats records Phase-1 cost, the paper's §5.1 accounting,
// extended with the warm-start bookkeeping of the sweep pipeline. The
// new fields are omitted from JSON when zero, so tables written by
// earlier versions load unchanged.
type TableStats struct {
	Solves      int `json:"solves"`
	Feasible    int `json:"feasible"`
	NewtonIters int `json:"newton_iters"`
	// WarmHits counts solves carried by a neighbor-seeded warm start;
	// WarmIters is their share of NewtonIters.
	WarmHits  int `json:"warm_hits,omitempty"`
	WarmIters int `json:"warm_newton_iters,omitempty"`
	// WallNanos is the summed per-point solve wall time across all
	// workers (it exceeds the sweep's elapsed wall clock when solves run
	// in parallel) — the paper's §5.1 "a few hours with CVX" number.
	WallNanos int64 `json:"wall_nanos,omitempty"`
}

// IterationsSaved estimates the Newton iterations warm starting avoided:
// the warm-started solves priced at the sweep's own average cold cost,
// minus what they actually spent. A warm-seeded solve always ends
// feasible (the seed is a feasible point), so the comparable cold
// population is the feasible cold solves — infeasible points certify
// through Phase I and report zero optimizer iterations. Zero when
// nothing warm-started or when warm solves were no cheaper.
func (s TableStats) IterationsSaved() int {
	coldFeasible := s.Feasible - s.WarmHits
	if coldFeasible <= 0 || s.WarmHits == 0 {
		return 0
	}
	avgCold := float64(s.NewtonIters-s.WarmIters) / float64(coldFeasible)
	saved := int(avgCold*float64(s.WarmHits)) - s.WarmIters
	if saved < 0 {
		return 0
	}
	return saved
}

// CacheKey returns a stable fingerprint of everything that determines
// the generated table's content: the chip (floorplan geometry, per-core
// power models, fixed uncore powers), the thermal window (horizon,
// step, response gain), the temperature limit, both grids, and the
// model variant with its tuning. Specs with equal keys generate
// interchangeable tables, so the key is what table caches index by.
// Workers is deliberately excluded — it changes cost, not content.
func (ts TableSpec) CacheKey() string {
	h := sha256.New()
	put := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	io.WriteString(h, "protemp-table-v1\x00")
	if ts.Chip != nil {
		fp := ts.Chip.Floorplan()
		for i := 0; i < fp.NumBlocks(); i++ {
			b := fp.Block(i)
			io.WriteString(h, b.Name)
			io.WriteString(h, "\x00")
			put(float64(b.Kind), b.X, b.Y, b.W, b.H)
		}
		for j := 0; j < ts.Chip.NumCores(); j++ {
			m := ts.Chip.CoreModelOf(j)
			put(m.FMax, m.PMax, m.IdleFrac)
		}
		put(ts.Chip.FixedPower()...)
	}
	if ts.Window != nil {
		put(float64(ts.Window.Steps()), ts.Window.Dt(), ts.Window.MaxGain())
	}
	put(ts.TMax, float64(ts.Variant), ts.GradWeight, float64(ts.GradStride))
	if ts.ConstrainAllBlocks {
		put(1)
	} else {
		put(0)
	}
	put(float64(len(ts.TStarts)))
	put(ts.TStarts...)
	put(float64(len(ts.FTargets)))
	put(ts.FTargets...)
	return hex.EncodeToString(h.Sum(nil))
}

// GenerateTable runs Phase 1 as a warm-started sweep: the TableSpec's
// convex program is compiled once (constraint coefficients, layouts,
// objective — everything independent of the grid point), then each
// TStart row is walked in ascending-FTarget order, seeding every solve
// from its feasible lower-frequency neighbor's optimum with the
// heuristic/rebalance/Phase-I ladder as fallback. Rows are dispatched
// to parallel workers, each owning one problem instance and one solver
// workspace, so the per-point cost is offset rewrites plus Newton
// iterations — not problem assembly or allocation. Because a row is one
// warm-start chain, parallelism tops out at len(TStarts) regardless of
// Workers.
//
// A solver error at any point aborts the generation and stops the
// dispatch of remaining rows. The context is honored down through the
// workers: cancellation stops dispatch, interrupts in-flight solves at
// their next Newton iteration, and makes GenerateTable return
// ctx.Err(). The produced tables are entry-equivalent (within solver
// tolerance) to solving every point cold, and CacheKey semantics are
// unchanged.
func GenerateTable(ctx context.Context, ts TableSpec) (*Table, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := compileSweep(ts, nil)
	if err != nil {
		return nil, err
	}
	nT, nF := len(ts.TStarts), len(ts.FTargets)
	tbl := &Table{
		TMax:     ts.TMax,
		FMax:     ts.Chip.FMax(),
		NumCores: ts.Chip.NumCores(),
		Variant:  ts.Variant.String(),
		TStarts:  append([]float64(nil), ts.TStarts...),
		FTargets: append([]float64(nil), ts.FTargets...),
		Entries:  make([][]Entry, nT),
	}
	for i := range tbl.Entries {
		tbl.Entries[i] = make([]Entry, nF)
	}

	workers := ts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nT {
		workers = nT
	}

	var (
		errMu    sync.Mutex
		firstErr error
		aborted  atomic.Bool
		done     atomic.Int64
		obsMu    sync.Mutex
		statsMu  sync.Mutex
		wg       sync.WaitGroup
	)
	fail := func(ti, fi int, err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("core: table point (%.0f°C, %.0f MHz): %w",
				ts.TStarts[ti], ts.FTargets[fi]/1e6, err)
		}
		errMu.Unlock()
		aborted.Store(true)
	}

	rows := make(chan int)
	total := nT * nF
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst := plan.instance()
			ws := solver.NewWorkspace(plan.lay.dim)
			var local TableStats
			defer func() {
				statsMu.Lock()
				tbl.Stats.Solves += local.Solves
				tbl.Stats.Feasible += local.Feasible
				tbl.Stats.NewtonIters += local.NewtonIters
				tbl.Stats.WarmHits += local.WarmHits
				tbl.Stats.WarmIters += local.WarmIters
				tbl.Stats.WallNanos += local.WallNanos
				statsMu.Unlock()
			}()
			for ti := range rows {
				// Each worker owns its rows outright, so Entries[ti]
				// writes below need no lock; per-worker stats fold in
				// once at exit, and the sweep mutexes guard only the
				// first error and the observer.
				var prevX linalg.Vector
				for fi := 0; fi < nF; fi++ {
					if aborted.Load() || ctx.Err() != nil {
						break
					}
					spec := inst.set(ts.TStarts[ti], ts.FTargets[fi])
					start := time.Now()
					var (
						a    *Assignment
						x    linalg.Vector
						warm bool
						err  error
					)
					if spec.FTarget/ts.Chip.FMax() >= fullSpeedPhi {
						a, err = fullSpeedAssignment(spec, inst.rows)
					} else {
						seed, gap := inst.warmSeed(spec, prevX)
						a, x, warm, err = solveLadder(ctx, spec, inst.prob, plan.lay, inst.rows, seed, gap, ws, nil)
					}
					elapsed := time.Since(start)
					if err != nil {
						if ctx.Err() == nil {
							fail(ti, fi, err)
						}
						break
					}
					local.Solves++
					local.NewtonIters += a.NewtonIters
					local.WallNanos += elapsed.Nanoseconds()
					if warm {
						local.WarmHits++
						local.WarmIters += a.NewtonIters
					}
					if a.Feasible {
						local.Feasible++
						prevX = x
						tbl.Entries[ti][fi] = Entry{
							Feasible:   true,
							Freqs:      a.Freqs,
							AvgFreq:    a.AvgFreq,
							TotalPower: a.TotalPower,
							PeakTemp:   a.PeakTemp,
							TGrad:      a.TGrad,
						}
					} else {
						// Feasibility is monotone in FTarget along a row:
						// past the capacity boundary every higher target
						// is infeasible too, but each point is still
						// solved so the table records the full mask.
						prevX = nil
					}
					if ts.Observer != nil {
						// The counter increments inside the observer
						// lock so Done values arrive in order.
						obsMu.Lock()
						ts.Observer(SweepProgress{
							Done:        int(done.Add(1)),
							Total:       total,
							TI:          ti,
							FI:          fi,
							TStart:      ts.TStarts[ti],
							FTarget:     ts.FTargets[fi],
							Feasible:    a.Feasible,
							Warm:        warm,
							NewtonIters: a.NewtonIters,
							Elapsed:     elapsed,
						})
						obsMu.Unlock()
					} else {
						done.Add(1)
					}
				}
			}
		}()
	}
dispatch:
	for ti := 0; ti < nT; ti++ {
		if aborted.Load() {
			break // a fatal solver error: stop dispatching rows
		}
		select {
		case rows <- ti:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return tbl, nil
}

// Lookup implements the paper's Phase-2 table access: round the
// observed maximum core temperature up to the next grid row (hotter
// assumed start is always safe), take the smallest stored target at or
// above the required frequency, and if that point is infeasible fall
// back to "the next lower frequency point in the table that can
// support the temperature constraints". The boolean reports whether
// any feasible entry exists at that temperature row; when false the
// caller must idle the cores for the window.
func (t *Table) Lookup(maxCoreTemp, requiredFreq float64) (Entry, bool) {
	ti := sort.SearchFloat64s(t.TStarts, maxCoreTemp)
	if ti == len(t.TStarts) {
		// Hotter than the grid covers: use the hottest (most
		// conservative) row available.
		ti = len(t.TStarts) - 1
	}
	fi := sort.SearchFloat64s(t.FTargets, requiredFreq)
	if fi == len(t.FTargets) {
		fi = len(t.FTargets) - 1
	}
	for ; fi >= 0; fi-- {
		if e := t.Entries[ti][fi]; e.Feasible {
			return e, true
		}
	}
	return Entry{}, false
}

// MaxSupportedFreq returns the largest stored feasible average
// frequency for the given starting temperature row — the quantity the
// paper's Fig. 9 sweeps.
func (t *Table) MaxSupportedFreq(tstart float64) float64 {
	e, ok := t.Lookup(tstart, t.FMax)
	if !ok {
		return 0
	}
	return e.AvgFreq
}

// Validate checks structural integrity (after deserialization).
func (t *Table) Validate() error {
	if len(t.TStarts) == 0 || len(t.FTargets) == 0 {
		return fmt.Errorf("core: table has empty grid")
	}
	if !sort.Float64sAreSorted(t.TStarts) || !sort.Float64sAreSorted(t.FTargets) {
		return fmt.Errorf("core: table grids not ascending")
	}
	if len(t.Entries) != len(t.TStarts) {
		return fmt.Errorf("core: %d entry rows for %d temperatures", len(t.Entries), len(t.TStarts))
	}
	for ti, row := range t.Entries {
		if len(row) != len(t.FTargets) {
			return fmt.Errorf("core: row %d has %d entries, want %d", ti, len(row), len(t.FTargets))
		}
		for fi, e := range row {
			if e.Feasible {
				if len(e.Freqs) != t.NumCores {
					return fmt.Errorf("core: entry (%d,%d) has %d freqs, want %d", ti, fi, len(e.Freqs), t.NumCores)
				}
				for _, f := range e.Freqs {
					if f < 0 || f > t.FMax*(1+1e-9) || math.IsNaN(f) {
						return fmt.Errorf("core: entry (%d,%d) frequency %g out of range", ti, fi, f)
					}
				}
			}
		}
	}
	return nil
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadTableJSON deserializes and validates a table.
func ReadTableJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("core: decode table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
