package core

import (
	"fmt"
	"math"
)

// Controller is the Phase-2 run-time thermal management unit: each DFS
// period it receives the maximum core temperature (from the per-core
// sensors the paper assumes) and the required average frequency (from
// queue and utilization tracking), and returns the pre-computed
// frequency vector.
type Controller struct {
	table *Table
}

// NewController wraps a validated table.
func NewController(table *Table) (*Controller, error) {
	if table == nil {
		return nil, fmt.Errorf("core: nil table")
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	return &Controller{table: table}, nil
}

// Table returns the underlying Phase-1 table.
func (c *Controller) Table() *Table { return c.table }

// Decision reports what the controller chose and why.
type Decision struct {
	// Freqs is the per-core frequency command in Hz. All zeros means
	// the window is spent idle (no feasible entry at this temperature).
	Freqs []float64
	// AvgFreq is the average of Freqs.
	AvgFreq float64
	// Downgraded reports that the required frequency was not
	// supportable and a lower table column was substituted (the paper's
	// fallback rule).
	Downgraded bool
	// Idle reports that no feasible entry existed at all.
	Idle bool
}

// Decide picks the frequency vector for the next DFS window.
func (c *Controller) Decide(maxCoreTemp, requiredFreq float64) Decision {
	if math.IsNaN(maxCoreTemp) || math.IsNaN(requiredFreq) {
		return c.idleDecision()
	}
	if requiredFreq < 0 {
		requiredFreq = 0
	}
	entry, ok := c.table.Lookup(maxCoreTemp, requiredFreq)
	if !ok {
		return c.idleDecision()
	}
	d := Decision{
		Freqs:      append([]float64(nil), entry.Freqs...),
		AvgFreq:    entry.AvgFreq,
		Downgraded: entry.AvgFreq+1e-6*c.table.FMax < requiredFreq,
	}
	return d
}

func (c *Controller) idleDecision() Decision {
	return Decision{Freqs: make([]float64, c.table.NumCores), Idle: true}
}
