package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// onlineSpec builds the fixture's OnlineSpec at the given variant.
func onlineSpec(t *testing.T, v Variant) OnlineSpec {
	f := niagaraFixture(t)
	return OnlineSpec{Chip: f.chip, Window: f.window, TMax: 100, Variant: v}
}

// thermalMap builds a mildly non-uniform per-block map around base °C,
// the shape an online controller observes mid-run.
func thermalMap(t *testing.T, base float64) []float64 {
	f := niagaraFixture(t)
	nb := f.chip.Floorplan().NumBlocks()
	m := make([]float64, nb)
	for i := range m {
		m[i] = base + 3*math.Sin(float64(i))
	}
	return m
}

// TestOnlineSolverMatchesCold drives a warm chain of windows through
// the compiled online solver and checks every assignment against a
// from-scratch cold solve of the identical Spec: same feasibility,
// frequencies within solver tolerance, same guarantee.
func TestOnlineSolverMatchesCold(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	for _, v := range []Variant{VariantVariable, VariantUniform, VariantGradient} {
		t.Run(v.String(), func(t *testing.T) {
			o, err := NewOnlineSolver(onlineSpec(t, v))
			if err != nil {
				t.Fatal(err)
			}
			steps := []struct {
				base    float64
				ftarget float64
			}{
				{55, 0.5 * fmax},
				{58, 0.55 * fmax}, // warm from the previous window
				{61, 0.5 * fmax},  // target moves down: still warm-safe
				{65, 0.6 * fmax},
				{65, fmax}, // degenerate full-speed window
				{60, 0.45 * fmax},
			}
			for i, st := range steps {
				m := thermalMap(t, st.base)
				a, _, err := o.Solve(context.Background(), 0, m, st.ftarget)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				spec := &Spec{
					Chip: f.chip, Window: f.window, TMax: 100,
					FTarget: st.ftarget, Variant: v, T0: m,
				}
				cold, err := SolveContext(context.Background(), spec)
				if err != nil {
					t.Fatalf("step %d cold: %v", i, err)
				}
				if a.Feasible != cold.Feasible {
					t.Fatalf("step %d: warm feasible=%v cold=%v", i, a.Feasible, cold.Feasible)
				}
				if !a.Feasible {
					continue
				}
				for j := range a.Freqs {
					if d := math.Abs(a.Freqs[j] - cold.Freqs[j]); d > 1e-4*fmax {
						t.Fatalf("step %d core %d: warm %.0f vs cold %.0f Hz (Δ %.0f)",
							i, j, a.Freqs[j], cold.Freqs[j], d)
					}
				}
				if a.PeakTemp > 100+1e-6 {
					t.Fatalf("step %d: warm assignment breaks the guarantee (peak %.3f)", i, a.PeakTemp)
				}
			}
		})
	}
}

// TestOnlineSolverWarmEngages checks the warm chain actually carries
// consecutive windows: after the first solve, similar windows are
// warm hits, and the warm state survives target moves in both
// directions.
func TestOnlineSolverWarmEngages(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	o, err := NewOnlineSolver(onlineSpec(t, VariantVariable))
	if err != nil {
		t.Fatal(err)
	}
	if o.Warm() {
		t.Fatal("fresh solver claims warm state")
	}
	m := thermalMap(t, 60)
	if _, st, err := o.Solve(context.Background(), 0, m, 0.5*fmax); err != nil || st.Warm {
		t.Fatalf("first solve: err=%v warm=%v, want cold success", err, st.Warm)
	}
	if !o.Warm() {
		t.Fatal("no warm state after a feasible solve")
	}
	warm := 0
	for i := 0; i < 5; i++ {
		m := thermalMap(t, 60+float64(i))
		_, st, err := o.Solve(context.Background(), 0, m, (0.5+0.02*float64(i))*fmax)
		if err != nil {
			t.Fatal(err)
		}
		if st.Warm {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no warm hits across 5 consecutive similar windows")
	}
}

// TestOnlineSolverUniformStartMode checks the nil-t0 path (the paper's
// single-temperature mode) against the cold solver.
func TestOnlineSolverUniformStartMode(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	o, err := NewOnlineSolver(onlineSpec(t, VariantVariable))
	if err != nil {
		t.Fatal(err)
	}
	for i, tstart := range []float64{47, 67, 87} {
		a, _, err := o.Solve(context.Background(), tstart, nil, 0.5*fmax)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SolveContext(context.Background(), &Spec{
			Chip: f.chip, Window: f.window, TMax: 100,
			TStart: tstart, FTarget: 0.5 * fmax,
		})
		if err != nil {
			t.Fatal(err)
		}
		if a.Feasible != cold.Feasible {
			t.Fatalf("step %d: feasibility mismatch", i)
		}
		for j := range a.Freqs {
			if d := math.Abs(a.Freqs[j] - cold.Freqs[j]); d > 1e-4*fmax {
				t.Fatalf("step %d core %d differs by %.0f Hz", i, j, d)
			}
		}
	}
}

// cancelAfterErrs is a context whose Err() flips to Canceled after a
// fixed number of polls — a deterministic way to land a cancellation
// in the middle of a solve (the solver polls once per Newton
// iteration).
type cancelAfterErrs struct {
	context.Context
	calls atomic.Int32
	after int32
}

func (c *cancelAfterErrs) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestOnlineSolverCancelInvalidates is the invalidate-on-error
// contract: a solve cancelled mid-barrier must not leave a
// half-converged iterate as the next window's seed — the next Solve
// runs cold and matches a from-scratch solve.
func TestOnlineSolverCancelInvalidates(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	o, err := NewOnlineSolver(onlineSpec(t, VariantVariable))
	if err != nil {
		t.Fatal(err)
	}
	m := thermalMap(t, 60)
	if _, _, err := o.Solve(context.Background(), 0, m, 0.5*fmax); err != nil {
		t.Fatal(err)
	}
	if !o.Warm() {
		t.Fatal("no warm state to poison")
	}

	// Cancel a few Newton iterations into the next window's solve.
	ctx := &cancelAfterErrs{Context: context.Background(), after: 3}
	if _, _, err := o.Solve(ctx, 0, thermalMap(t, 63), 0.55*fmax); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-solve cancellation returned %v, want context.Canceled", err)
	}
	if o.Warm() {
		t.Fatal("warm state survived a cancelled solve")
	}

	// The next window under a live context must be a correct cold solve.
	m2 := thermalMap(t, 63)
	a, st, err := o.Solve(context.Background(), 0, m2, 0.55*fmax)
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm {
		t.Fatal("solve after invalidation claims a warm hit")
	}
	cold, err := SolveContext(context.Background(), &Spec{
		Chip: f.chip, Window: f.window, TMax: 100,
		FTarget: 0.55 * fmax, T0: m2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible != cold.Feasible {
		t.Fatal("post-cancel feasibility mismatch")
	}
	for j := range a.Freqs {
		if d := math.Abs(a.Freqs[j] - cold.Freqs[j]); d > 1e-4*fmax {
			t.Fatalf("post-cancel core %d differs from cold by %.0f Hz", j, d)
		}
	}
}

// TestOnlineSolverRejectsBadMap checks input validation: a wrong-length
// or non-finite map errors without panicking and the solver stays
// usable.
func TestOnlineSolverRejectsBadMap(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	o, err := NewOnlineSolver(onlineSpec(t, VariantVariable))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Solve(context.Background(), 0, []float64{1, 2, 3}, 0.5*fmax); err == nil {
		t.Fatal("wrong-length map accepted")
	}
	bad := thermalMap(t, 60)
	bad[0] = math.NaN()
	if _, _, err := o.Solve(context.Background(), 0, bad, 0.5*fmax); err == nil {
		t.Fatal("NaN map accepted")
	}
	if _, _, err := o.Solve(context.Background(), 0, thermalMap(t, 60), 0.5*fmax); err != nil {
		t.Fatalf("solver unusable after bad inputs: %v", err)
	}
}
