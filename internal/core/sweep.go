package core

import (
	"fmt"
	"math"

	"protemp/internal/linalg"
	"protemp/internal/power"
	"protemp/internal/solver"
	"protemp/internal/thermal"
)

// sweepPlan is the compiled, grid-point-independent structure of one
// TableSpec: the variable layout, the objective, every constraint
// coefficient vector, and the affine dependence of each temperature
// offset on TStart. The paper's Phase-1 sweep solves the same convex
// program nT×nF times with only two scalars changing — the starting
// temperature (which shifts the temperature constraints' offsets) and
// the frequency target (which shifts the workload constraint's offset).
// Compiling once and instantiating per grid point removes the per-point
// rebuild of ~m·blocks thermal rows and constraint objects that made
// every solve pay the full assembly cost (§5.1's "few hours with CVX").
type sweepPlan struct {
	ts  TableSpec
	lay layout

	// rows holds one compiled temperature map per (step, block):
	// c0(TStart) = t0Gain·TStart + c0Base, with coef independent of the
	// grid point entirely.
	rows []planRow

	objective solver.Func
	// tempA/tempNZ are the shared coefficient vectors of the temperature
	// constraints, index-aligned with rows.
	tempA  []linalg.Vector
	tempNZ [][]int
	// static holds the grid-point-independent constraints (power
	// coupling and box constraints), shared read-only by every instance.
	static []solver.Func
	// workA/workNZ and workB0 define the workload constraint: B =
	// workScale·phi with phi = FTarget/fmax.
	workA     linalg.Vector
	workNZ    []int
	workScale float64
	// gradPairs compiles the VariantGradient pairwise constraints:
	// coefficient vectors are constant, offsets are row c0 differences.
	gradPairs []gradPair

	// pattern is the compiled arrow-structure hint of the problem's
	// barrier Hessian, shared read-only by every instance (the solver
	// re-verifies it per solve). nil means the structure did not
	// compile and solves stay on the dense path.
	pattern *solver.HessianPattern
}

// planRow is one compiled temperature row.
type planRow struct {
	step, block int
	t0Gain      float64 // ∂c0/∂TStart (row sum of A^step over the chip)
	c0Base      float64 // TStart-independent part: drive + fixed power
	coef        linalg.Vector
	// t0Row is the per-block initial-state row of A^step (aliases the
	// window response), so an explicit thermal map T0 instantiates as
	// c0 = t0Row·T0 + c0Base — the online MPC path's per-window rewrite.
	// It is nil when the plan was compiled with a pinned T0 (offsets
	// folded into c0Base outright).
	t0Row linalg.Vector
}

// compileRows is the single assembly of the temperature-row structure,
// shared by compileSweep and Spec.tempRows: one row per (window step,
// constrained block), with the fixed (uncore) power and ambient drive
// folded into the offset and the per-core power gains scaled to
// normalized units. A nil t0 selects the uniform-TStart mode — the
// window's affine map is evaluated at t0 = 0 and t0 = 1 to separate
// the TStart-independent drive (c0Base) from the TStart gain (t0Gain),
// exploiting that base is affine in a uniform starting temperature. A
// non-nil t0 pins explicit per-block temperatures: the offset is
// computed outright and t0Gain stays zero.
func compileRows(chip *power.Chip, window *thermal.WindowResponse, allBlocks bool, t0 linalg.Vector) ([]planRow, error) {
	fp := chip.Floorplan()
	nb := fp.NumBlocks()
	n := chip.NumCores()
	if window.Dt() <= 0 {
		return nil, fmt.Errorf("core: invalid window")
	}
	if t0 != nil && len(t0) != nb {
		return nil, fmt.Errorf("core: t0 has %d entries for %d blocks", len(t0), nb)
	}
	var blocks []int
	if allBlocks {
		for i := 0; i < nb; i++ {
			blocks = append(blocks, i)
		}
	} else {
		blocks = fp.CoreIndices()
	}

	fixed := chip.FixedPower()
	m := window.Steps()
	rows := make([]planRow, 0, m*len(blocks))
	for k := 1; k <= m; k++ {
		for _, bi := range blocks {
			row := planRow{step: k, block: bi}
			t0Row, drive, gain, err := window.AffineRows(k, bi)
			if err != nil {
				return nil, err
			}
			if t0 != nil {
				// Pinned starting map: the whole offset is known now.
				row.c0Base = t0Row.Dot(t0) + drive + gain.Dot(fixed)
			} else {
				// Deferred: c0(TStart) = t0Gain·TStart + c0Base for the
				// uniform sweep, or c0(T0) = t0Row·T0 + c0Base for an
				// explicit per-block map (instance.setMap).
				row.t0Row = t0Row
				row.t0Gain = t0Row.Sum()
				row.c0Base = drive + gain.Dot(fixed)
			}
			coef := linalg.NewVector(n)
			for j := 0; j < n; j++ {
				g := gain[chip.CoreBlockIndex(j)]
				if g < 0 {
					return nil, fmt.Errorf("core: negative heat gain at step %d block %d", k, bi)
				}
				coef[j] = g * chip.CoreModelOf(j).PMax
			}
			row.coef = coef
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// gradPair is one compiled pairwise-gradient constraint: rows ri and rj
// give B = c0[ri] − c0[rj]; the coefficient vector is constant.
type gradPair struct {
	ri, rj int
	a      linalg.Vector
	nz     []int
}

// compileSweep builds the plan: everything about the TableSpec's convex
// program that does not depend on (TStart, FTarget), computed exactly
// once per sweep instead of once per grid point. It is also the single
// assembly behind Spec.build(), so the cold per-point path and the
// sweep cannot drift apart.
//
// A nil t0 selects the uniform-TStart mode, where each temperature
// offset is affine in the (yet unknown) starting temperature. A non-nil
// t0 pins explicit per-block starting temperatures (Spec.T0): offsets
// are computed outright and instance.set ignores its tstart argument.
func compileSweep(ts TableSpec, t0 linalg.Vector) (*sweepPlan, error) {
	chip := ts.Chip
	fp := chip.Floorplan()
	n := chip.NumCores()
	lay := newLayout(ts.Variant, n)
	pl := &sweepPlan{ts: ts, lay: lay}

	probe := Spec{
		Chip: ts.Chip, Window: ts.Window, TMax: ts.TMax,
		Variant: ts.Variant, GradWeight: ts.GradWeight, GradStride: ts.GradStride,
		ConstrainAllBlocks: ts.ConstrainAllBlocks,
	}

	rows, err := compileRows(chip, ts.Window, ts.ConstrainAllBlocks, t0)
	if err != nil {
		return nil, err
	}
	pl.rows = rows

	// Objective (shared, stateless).
	objA := linalg.NewVector(lay.dim)
	for j := 0; j < n; j++ {
		objA[lay.pIdx(j)] += chip.CoreModelOf(j).PMax
	}
	if ts.Variant == VariantGradient {
		objA[lay.gIdx()] = probe.gradWeight()
	}
	pl.objective = &solver.Affine{A: objA}

	// Temperature-constraint coefficient vectors (shared; offsets are
	// per instance).
	pl.tempA = make([]linalg.Vector, len(pl.rows))
	pl.tempNZ = make([][]int, len(pl.rows))
	for i, r := range pl.rows {
		a := linalg.NewVector(lay.dim)
		if ts.Variant == VariantUniform {
			a[lay.pIdx(0)] = r.coef.Sum()
		} else {
			for j := 0; j < n; j++ {
				a[lay.pIdx(j)] = r.coef[j]
			}
		}
		pl.tempA[i] = a
		pl.tempNZ[i] = nonzeroIndices(a)
	}

	// Power-frequency couplings (constant, shared).
	couplings := n
	if ts.Variant == VariantUniform {
		couplings = 1
	}
	for j := 0; j < couplings; j++ {
		model := chip.CoreModelOf(j)
		d := linalg.NewVector(lay.dim)
		d[lay.fIdx(j)] = 1 - model.IdleFrac
		a := linalg.NewVector(lay.dim)
		a[lay.pIdx(j)] = -1
		q, err := solver.NewDiagQuadratic(d, a, model.IdleFrac)
		if err != nil {
			return nil, err
		}
		pl.static = append(pl.static, q)
	}

	// Workload constraint coefficients (offset varies with FTarget).
	pl.workA = linalg.NewVector(lay.dim)
	if ts.Variant == VariantUniform {
		pl.workA[lay.fIdx(0)] = -1
		pl.workScale = 1
	} else {
		for j := 0; j < n; j++ {
			pl.workA[lay.fIdx(j)] = -1
		}
		pl.workScale = float64(n)
	}
	pl.workNZ = nonzeroIndices(pl.workA)

	// Box constraints (constant, shared). The shared slice keeps the
	// same ordering build() emits: couplings, workload, box — the
	// workload slot is spliced in by the instance.
	vars := 1
	if ts.Variant != VariantUniform {
		vars = n
	}
	for j := 0; j < vars; j++ {
		lo := linalg.NewVector(lay.dim)
		lo[lay.fIdx(j)] = -1
		hi := linalg.NewVector(lay.dim)
		hi[lay.fIdx(j)] = 1
		pu := linalg.NewVector(lay.dim)
		pu[lay.pIdx(j)] = 1
		pl.static = append(pl.static,
			solver.NewSparseAffine(lo, 0),
			solver.NewSparseAffine(hi, -1),
			solver.NewSparseAffine(pu, -1),
		)
	}

	// Gradient pairwise structure (VariantGradient): coefficient vectors
	// are TStart-independent; offsets are row-c0 differences.
	if ts.Variant == VariantGradient {
		isCore := make(map[int]bool)
		for _, bi := range fp.CoreIndices() {
			isCore[bi] = true
		}
		byStep := make(map[int][]int) // step -> indices into pl.rows
		for i, r := range pl.rows {
			if isCore[r.block] {
				byStep[r.step] = append(byStep[r.step], i)
			}
		}
		stride := probe.gradStride()
		m := ts.Window.Steps()
		for k := 1; k <= m; k++ {
			if k%stride != 0 && k != m {
				continue
			}
			stepRows := byStep[k]
			for i := 0; i < len(stepRows); i++ {
				for j := 0; j < len(stepRows); j++ {
					if i == j {
						continue
					}
					ri, rj := stepRows[i], stepRows[j]
					a := linalg.NewVector(lay.dim)
					for c := 0; c < n; c++ {
						a[lay.pIdx(c)] = pl.rows[ri].coef[c] - pl.rows[rj].coef[c]
					}
					a[lay.gIdx()] = -1
					pl.gradPairs = append(pl.gradPairs, gradPair{
						ri: ri, rj: rj, a: a, nz: nonzeroIndices(a),
					})
				}
			}
		}
	}

	// Compile the arrow-structure hint against a probe instance: every
	// sibling instance shares the same coefficient vectors, so the one
	// pattern serves the sweep, the online MPC path and every DMPC
	// cluster. The f block is the frequency variables — lay.fIdx is the
	// identity over [0, nf). A structure that fails to compile is not an
	// error; those solves simply stay dense.
	nf := n
	if ts.Variant == VariantUniform {
		nf = 1
	}
	if pat, err := solver.CompileHessianPattern(pl.instance().prob, nf); err == nil {
		pl.pattern = pat
	}
	return pl, nil
}

// sweepInstance is one worker's mutable view of a compiled plan: a
// problem whose constraint offsets are rewritten in place per grid
// point, plus the tempRow buffer the start heuristics consume. The
// coefficient vectors alias the plan and are never written.
type sweepInstance struct {
	plan *sweepPlan
	prob *solver.Problem
	rows []tempRow // c0 refreshed per TStart; coef aliases the plan

	temp []*solver.Affine // temperature constraints, aligned with rows
	work *solver.Affine
	grad []*solver.Affine // aligned with plan.gradPairs

	curTStart float64 // last TStart the offsets were computed for
}

// instance materializes a per-worker problem over the shared plan.
func (pl *sweepPlan) instance() *sweepInstance {
	in := &sweepInstance{plan: pl, curTStart: math.NaN()}
	in.rows = make([]tempRow, len(pl.rows))
	for i, r := range pl.rows {
		in.rows[i] = tempRow{step: r.step, block: r.block, coef: r.coef}
	}
	in.prob = &solver.Problem{Objective: pl.objective}
	in.temp = make([]*solver.Affine, len(pl.rows))
	for i := range pl.rows {
		in.temp[i] = &solver.Affine{A: pl.tempA[i], NZ: pl.tempNZ[i]}
		in.prob.Constraints = append(in.prob.Constraints, in.temp[i])
	}
	// Splice the workload constraint between the couplings and the box
	// constraints, matching Spec.build()'s ordering exactly.
	couplings := pl.ts.Chip.NumCores()
	if pl.ts.Variant == VariantUniform {
		couplings = 1
	}
	for _, c := range pl.static[:couplings] {
		in.prob.Constraints = append(in.prob.Constraints, c)
	}
	in.work = &solver.Affine{A: pl.workA, NZ: pl.workNZ}
	in.prob.Constraints = append(in.prob.Constraints, in.work)
	for _, c := range pl.static[couplings:] {
		in.prob.Constraints = append(in.prob.Constraints, c)
	}
	in.grad = make([]*solver.Affine, len(pl.gradPairs))
	for i, gp := range pl.gradPairs {
		in.grad[i] = &solver.Affine{A: gp.a, NZ: gp.nz}
		in.prob.Constraints = append(in.prob.Constraints, in.grad[i])
	}
	in.prob.Pattern = pl.pattern
	return in
}

// set instantiates the compiled problem at one grid point: refresh the
// temperature offsets when TStart changed, always refresh the workload
// offset, and return the equivalent per-point Spec (for the start
// heuristics and the final forward-simulation check). The work is a
// handful of scalar writes per constraint — no allocation, no thermal
// re-evaluation.
func (in *sweepInstance) set(tstart, ftarget float64) *Spec {
	pl := in.plan
	if tstart != in.curTStart {
		in.curTStart = tstart
		for i := range in.rows {
			c0 := pl.rows[i].t0Gain*tstart + pl.rows[i].c0Base
			in.rows[i].c0 = c0
			in.temp[i].B = c0 - pl.ts.TMax
		}
		for i, gp := range pl.gradPairs {
			in.grad[i].B = in.rows[gp.ri].c0 - in.rows[gp.rj].c0
		}
	}
	in.work.B = pl.workScale * ftarget / pl.ts.Chip.FMax()
	return &Spec{
		Chip:               pl.ts.Chip,
		Window:             pl.ts.Window,
		TStart:             tstart,
		TMax:               pl.ts.TMax,
		FTarget:            ftarget,
		Variant:            pl.ts.Variant,
		GradWeight:         pl.ts.GradWeight,
		GradStride:         pl.ts.GradStride,
		ConstrainAllBlocks: pl.ts.ConstrainAllBlocks,
	}
}

// setMap instantiates the compiled problem at an explicit per-block
// starting map instead of a uniform TStart: every temperature offset is
// rewritten as c0 = t0Row·t0 + c0Base (one short dot product per row),
// the gradient-pair and workload offsets follow, and the equivalent
// per-point Spec is returned for the start heuristics and the forward
// check. Only valid on plans compiled with a nil t0 (compileSweep's
// deferred mode); the returned Spec aliases t0, which must stay
// unmodified for the duration of the solve. This is the online MPC hot
// path: each control window observes a fresh thermal map, and the
// rewrite replaces the full problem rebuild the cold path pays.
func (in *sweepInstance) setMap(t0 linalg.Vector, ftarget float64) *Spec {
	pl := in.plan
	// Poison the uniform-TStart memo: NaN never compares equal, so a
	// later set() always refreshes the offsets this call overwrites.
	in.curTStart = math.NaN()
	for i := range in.rows {
		c0 := pl.rows[i].t0Row.Dot(t0) + pl.rows[i].c0Base
		in.rows[i].c0 = c0
		in.temp[i].B = c0 - pl.ts.TMax
	}
	for i, gp := range pl.gradPairs {
		in.grad[i].B = in.rows[gp.ri].c0 - in.rows[gp.rj].c0
	}
	in.work.B = pl.workScale * ftarget / pl.ts.Chip.FMax()
	return &Spec{
		Chip:               pl.ts.Chip,
		Window:             pl.ts.Window,
		TMax:               pl.ts.TMax,
		FTarget:            ftarget,
		Variant:            pl.ts.Variant,
		GradWeight:         pl.ts.GradWeight,
		GradStride:         pl.ts.GradStride,
		ConstrainAllBlocks: pl.ts.ConstrainAllBlocks,
		T0:                 t0,
	}
}

// warmSeed re-centers a neighboring grid point's optimum into a
// strictly feasible start for the current point. The neighbor solved a
// lower FTarget at the same TStart, so its frequency sum sits at (or
// slightly above) the old workload bound; the deficit to the new bound
// is distributed proportionally to each core's frequency headroom,
// preserving the spatial shape the optimizer found — which is exactly
// what makes the seed strictly feasible near the capacity boundary
// where the uniform heuristics fail. Powers are re-derived from the
// power law with a small slack ladder.
//
// The returned gap estimate bounds the seed's suboptimality: the new
// optimum costs at least the neighbor's (feasible sets only shrink as
// FTarget rises), so f0(seed) − f0(prevX) plus the neighbor's own
// solve tolerance over-estimates f0(seed) − p*. solver.WarmStart
// turns it into the initial barrier weight. Returns (nil, 0) when no
// slack level yields strict feasibility (the caller falls back to the
// cold ladder).
func (in *sweepInstance) warmSeed(s *Spec, prevX linalg.Vector) (linalg.Vector, float64) {
	lay := in.plan.lay
	if prevX == nil || len(prevX) != lay.dim {
		return nil, 0
	}
	n := s.Chip.NumCores()
	phi := s.FTarget / s.Chip.FMax()
	vars := n
	if lay.variant == VariantUniform {
		vars = 1
	}

	fn := linalg.NewVector(vars)
	var sum, headroom float64
	for j := 0; j < vars; j++ {
		fn[j] = clamp01(prevX[lay.fIdx(j)])
		sum += fn[j]
		headroom += 1 - fn[j]
	}
	// Lift the frequency sum strictly above the new workload bound,
	// spreading the deficit by headroom so no core is pushed past 1.
	need := in.plan.workScale*phi + 1e-6*float64(vars) - sum
	if need > 0 {
		if headroom <= need+1e-9 {
			return nil, 0
		}
		for j := 0; j < vars; j++ {
			fn[j] += need * (1 - fn[j]) / headroom
		}
	}
	for j := 0; j < vars; j++ {
		if fn[j] <= 0 || fn[j] >= 1 {
			return nil, 0
		}
	}

	pn := linalg.NewVector(n)
	for _, slack := range []float64{1e-2, 1e-3, 1e-4} {
		x := linalg.NewVector(lay.dim)
		ok := true
		for j := 0; j < vars; j++ {
			model := s.Chip.CoreModelOf(j)
			pj := model.AtFrequency(fn[j]*model.FMax)/model.PMax + slack
			if pj >= 1 {
				ok = false
				break
			}
			x[lay.fIdx(j)] = fn[j]
			x[lay.pIdx(j)] = pj
		}
		if !ok {
			continue
		}
		for j := 0; j < n; j++ {
			pn[j] = x[lay.pIdx(j)]
		}
		worst := math.Inf(-1)
		for _, r := range in.rows {
			if t := r.c0 + r.coef.Dot(pn) - s.TMax; t > worst {
				worst = t
			}
		}
		if worst >= -1e-6 {
			continue
		}
		if lay.variant == VariantGradient {
			// A tight margin keeps the seed's objective gap — and so the
			// derived warm barrier weight — close to the optimum: tgrad at
			// the optimum sits on the max pair gap, and every 0.1 °C of
			// extra slack here costs the warm solve an extra outer stage.
			x[lay.gIdx()] = maxPairGap(s, in.rows, pn) + 0.05
		}
		// Suboptimality bound: the seed costs obj(x); the new optimum
		// costs at least the neighbor's obj(prevX) minus its solve
		// tolerance. The floor keeps the derived barrier weight finite
		// when the grid step is tiny.
		gap := in.plan.objective.Value(x) - in.plan.objective.Value(prevX) + 1e-6
		if gap < 1e-6 {
			gap = 1e-6
		}
		return x, gap
	}
	return nil, 0
}

// nonzeroIndices returns the NZ sparsity list for a constraint
// coefficient vector, delegating to solver.NewSparseAffine so the
// compiled sweep's hand-assembled Affines follow the solver's own
// sparsity convention.
func nonzeroIndices(a linalg.Vector) []int {
	return solver.NewSparseAffine(a, 0).NZ
}
