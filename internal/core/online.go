package core

import (
	"context"
	"fmt"

	"protemp/internal/linalg"
	"protemp/internal/obs"
	"protemp/internal/power"
	"protemp/internal/solver"
	"protemp/internal/thermal"
)

// OnlineSpec is the fixed part of an online (model-predictive) control
// problem: everything about the convex program that does not change
// between control windows. The per-window inputs — the observed thermal
// map (or the uniform starting temperature) and the required frequency
// target — are supplied to each OnlineSolver.Solve call.
type OnlineSpec struct {
	Chip   *power.Chip
	Window *thermal.WindowResponse
	TMax   float64
	// Variant selects the model; zero value is VariantVariable.
	Variant Variant
	// GradWeight / GradStride forward to Spec for VariantGradient.
	GradWeight float64
	GradStride int
	// ConstrainAllBlocks forwards to Spec.
	ConstrainAllBlocks bool
}

// OnlineStepStats reports one Solve call's warm-start outcome.
type OnlineStepStats struct {
	// Warm reports that the solve was carried by a seed re-centered from
	// the previous window's optimum.
	Warm bool
	// WarmRejected reports that a previous optimum was available but the
	// seed could not be made strictly feasible (or stalled) and the solve
	// fell back to the cold start ladder.
	WarmRejected bool
	// NewtonIters is the solve's Newton-iteration cost.
	NewtonIters int
	// AssembleNanos and FactorNanos split the solve's wall time into
	// Hessian assembly vs KKT factorization+solve; zero for degenerate
	// (full-speed) steps that never enter the barrier.
	AssembleNanos int64
	FactorNanos   int64
}

// OnlineSolver is the warm-started engine of the online MPC hot path:
// the Phase-2 controller variant that re-solves the convex program
// every control window on the observed thermal map. It compiles the
// window-independent problem structure once (constraint coefficient
// vectors, layout, objective — the same sweepPlan the Phase-1 sweep
// uses), owns one solver workspace, and keeps the previous window's
// optimum so consecutive Solve calls rewrite only the state-dependent
// constraint offsets and warm-start the barrier from the last solution,
// with the cold heuristic/rebalance/Phase-I ladder as fallback.
//
// An OnlineSolver is NOT safe for concurrent use: it mutates its
// compiled problem instance, workspace and warm state in place. Callers
// serving one solver to several goroutines (protemp.Session) must
// serialize Solve calls.
//
// Error handling is invalidate-on-error: any failed solve — including a
// context cancellation that interrupts the barrier mid-centering —
// drops the warm state, so the next Solve starts cold and cannot be
// poisoned by a half-converged iterate.
type OnlineSolver struct {
	spec OnlineSpec
	plan *sweepPlan
	inst *sweepInstance
	ws   *solver.Workspace

	prevX linalg.Vector // previous window's optimum; nil = cold
	t0buf linalg.Vector // stable copy of the caller's thermal map

	rec obs.Recorder // nil = tracing disabled
}

// NewOnlineSolver validates the spec and compiles the problem
// structure. The compile cost is paid once per session, not per window.
func NewOnlineSolver(os OnlineSpec) (*OnlineSolver, error) {
	probe := Spec{
		Chip: os.Chip, Window: os.Window, TMax: os.TMax,
		Variant: os.Variant, GradWeight: os.GradWeight, GradStride: os.GradStride,
		ConstrainAllBlocks: os.ConstrainAllBlocks,
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	ts := TableSpec{
		Chip: os.Chip, Window: os.Window, TMax: os.TMax,
		Variant: os.Variant, GradWeight: os.GradWeight, GradStride: os.GradStride,
		ConstrainAllBlocks: os.ConstrainAllBlocks,
	}
	plan, err := compileSweep(ts, nil)
	if err != nil {
		return nil, err
	}
	o := &OnlineSolver{
		spec:  os,
		plan:  plan,
		inst:  plan.instance(),
		ws:    solver.NewWorkspace(plan.lay.dim),
		t0buf: linalg.NewVector(os.Chip.Floorplan().NumBlocks()),
	}
	return o, nil
}

// Warm reports whether the next Solve has a previous optimum to seed
// from.
func (o *OnlineSolver) Warm() bool { return o.prevX != nil }

// Invalidate drops the warm state; the next Solve starts cold.
func (o *OnlineSolver) Invalidate() { o.prevX = nil }

// SetRecorder installs (or, with nil, removes) the trace recorder the
// next Solve calls report to. Callers must never pass a typed-nil
// concrete value; the disabled state is the nil interface. Like Solve
// itself, SetRecorder must be serialized by the caller.
func (o *OnlineSolver) SetRecorder(rec obs.Recorder) { o.rec = rec }

// Solve computes the optimal frequency assignment for one control
// window. t0 supplies the observed per-block thermal map (length
// NumBlocks, °C); a nil t0 selects the paper's uniform-TStart mode at
// tstart °C. ftarget is the required average core frequency in Hz.
//
// The call rewrites the compiled problem's state-dependent offsets in
// place, seeds the barrier from the previous window's optimum when one
// survives re-centering, and falls back to the cold start ladder
// otherwise. Cancelling ctx aborts at the next Newton iteration with
// ctx.Err(); per the invalidate-on-error contract the warm state is
// dropped, so the following Solve is a correct cold solve.
func (o *OnlineSolver) Solve(ctx context.Context, tstart float64, t0 []float64, ftarget float64) (*Assignment, OnlineStepStats, error) {
	var st OnlineStepStats
	var spec *Spec
	if t0 != nil {
		if len(t0) != len(o.t0buf) {
			return nil, st, fmt.Errorf("core: online map has %d entries for %d blocks", len(t0), len(o.t0buf))
		}
		// Copy the caller's map: the Spec (and the instance rows) must
		// stay coherent for the whole solve even if the caller mutates
		// its buffer from another goroutine.
		copy(o.t0buf, t0)
		spec = o.inst.setMap(o.t0buf, ftarget)
	} else {
		spec = o.inst.set(tstart, ftarget)
	}
	if err := spec.Validate(); err != nil {
		o.prevX = nil
		return nil, st, err
	}
	if err := ctx.Err(); err != nil {
		// Not an invalidating failure: nothing touched the solver state
		// beyond offsets the next call rewrites anyway, and prevX is
		// still the previous window's true optimum.
		return nil, st, err
	}

	// Degenerate full-speed target: a feasibility check, not a solve.
	// It yields no new interior iterate, but the previous optimum stays
	// valid as a future seed — an overloaded stream alternates
	// full-speed checks with downgraded re-solves, and dropping the
	// seed here would break that warm chain every window.
	if ftarget/o.spec.Chip.FMax() >= fullSpeedPhi {
		a, err := fullSpeedAssignment(spec, o.inst.rows)
		if err != nil {
			o.prevX = nil
			return nil, st, err
		}
		if o.rec != nil {
			o.rec.SolveStart(ftarget)
			o.rec.Rung("full-speed")
			o.rec.SolveEnd(a.Feasible, nil)
		}
		return a, st, nil
	}

	hadPrev := o.prevX != nil
	seed, gap := o.inst.warmSeed(spec, o.prevX)
	if o.rec != nil {
		o.rec.SolveStart(ftarget)
	}
	a, x, warm, err := solveLadder(ctx, spec, o.inst.prob, o.plan.lay, o.inst.rows, seed, gap, o.ws, o.rec)
	if o.rec != nil {
		feasible := err == nil && a != nil && a.Feasible
		o.rec.SolveEnd(feasible, err)
	}
	if err != nil {
		o.prevX = nil
		return nil, st, err
	}
	st.Warm = warm
	st.WarmRejected = hadPrev && !warm
	st.NewtonIters = a.NewtonIters
	st.AssembleNanos = a.AssembleNanos
	st.FactorNanos = a.FactorNanos
	if a.Feasible {
		o.prevX = x
	}
	// An infeasible outcome keeps the previous optimum: it remains a
	// legitimate seed for the downgraded re-solve that typically
	// follows (warmSeed re-validates it against the refreshed offsets,
	// so a stale seed degrades to a cold solve, never a wrong one).
	return a, st, nil
}
