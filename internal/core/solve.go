package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"protemp/internal/linalg"
	"protemp/internal/obs"
	"protemp/internal/solver"
)

// fullSpeedPhi is the normalized target above which the workload
// constraint pins every frequency to fmax and the program degenerates
// to a feasibility check of the full-speed point.
const fullSpeedPhi = 1 - 1e-9

// Solve computes the optimal frequency assignment for the design point,
// or Assignment{Feasible: false} when the paper's "infeasible solution"
// signal applies. Solver failures other than infeasibility are returned
// as errors.
func Solve(s *Spec) (*Assignment, error) {
	return SolveContext(context.Background(), s)
}

// SolveContext is Solve with cancellation: ctx is polled once per
// Newton iteration of the interior-point method, so a cancelled or
// expired context aborts the solve promptly with ctx.Err().
func SolveContext(ctx context.Context, s *Spec) (*Assignment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Degenerate target: the only candidate is full speed on all cores.
	if s.FTarget/s.Chip.FMax() >= fullSpeedPhi {
		rows, err := s.tempRows()
		if err != nil {
			return nil, err
		}
		return fullSpeedAssignment(s, rows)
	}

	prob, lay, rows, err := s.build()
	if err != nil {
		return nil, err
	}
	a, _, _, err := solveLadder(ctx, s, prob, lay, rows, nil, 0, nil, nil)
	return a, err
}

// solveLadder solves a prebuilt problem through the start ladder: the
// warm seed (a re-centered neighboring optimum) when one is supplied,
// then the cheap feasibility heuristics, then the physics-guided
// rebalance, then the generic Phase-I auxiliary program. It is the
// single solve path shared by SolveContext (cold, no workspace) and the
// table sweep (warm-seeded, per-worker workspace), so both produce
// interchangeable assignments. It returns the assignment, the raw
// normalized optimum for seeding the next grid point (nil when
// infeasible), and whether the warm seed carried the solve. A non-nil
// rec observes the warm decision, the rung taken and every barrier
// centering; the nil path costs only pointer checks.
func solveLadder(ctx context.Context, s *Spec, prob *solver.Problem, lay layout, rows []tempRow, warmSeed linalg.Vector, warmGap float64, ws *solver.Workspace, rec obs.Recorder) (*Assignment, linalg.Vector, bool, error) {
	n := s.Chip.NumCores()
	phi := s.FTarget / s.Chip.FMax()
	opts := solver.DefaultOptions()
	opts.Tol = 1e-7
	opts.Interrupt = ctx.Err
	if s.Variant == VariantGradient {
		// The gradient variant's pairwise rows make the barrier stiff:
		// at the default μ=20 each weight jump slams the iterate against
		// the coupling boundary and Newton creeps for hundreds of
		// iterations per stage (exhausting MaxNewton, so the final stage
		// is uncentered and every warm seed is rejected). A gentler
		// schedule keeps each stage inside Newton's fast region: ~10×
		// fewer total iterations and a certifiably centered result.
		opts.Mu = 10
	}
	if rec != nil {
		opts.Centering = rec.Centering
	}

	var res *solver.Result
	var err error
	warm := false
	if warmSeed != nil {
		res, err = solver.WarmStart(prob, warmSeed, nil, warmGap, opts, ws)
		switch {
		case err == nil && res.Centered:
			warm = true
			if rec != nil {
				rec.WarmDecision(true, true, "")
				rec.Rung("warm")
			}
		case ctx.Err() != nil:
			return nil, nil, false, ctx.Err()
		default:
			// A warm seed that cannot be re-centered, that stalls the
			// barrier, or whose final centering exhausted its iteration
			// budget (Result.Centered false — the duality-gap bound is
			// then not a certificate) is not a verdict on the problem;
			// fall back cold so warm results stay interchangeable with
			// cold ones.
			if rec != nil {
				reason := "uncentered"
				if err != nil {
					reason = err.Error()
				}
				rec.WarmDecision(true, false, reason)
			}
			res, err = nil, nil
		}
	}
	if res == nil {
		start := heuristicStart(s, lay, rows, phi)
		rung := "heuristic"
		if start == nil {
			// Near the capacity boundary only a non-uniform assignment is
			// feasible; a physics-guided rebalance finds one directly where
			// the generic Phase-I auxiliary problem converges too slowly.
			start = rebalanceStart(s, lay, rows, phi)
			rung = "rebalance"
		}
		if start != nil {
			res, err = solver.BarrierWS(prob, start, opts, ws)
		} else {
			rung = "phase1"
			res, err = solver.SolveWS(prob, neutralStart(lay, phi), opts, ws)
		}
		if rec != nil {
			rec.Rung(rung)
		}
	}
	if err != nil {
		if errors.Is(err, solver.ErrInfeasible) {
			return &Assignment{}, nil, warm, nil
		}
		return nil, nil, warm, fmt.Errorf("core: solve (%s, tstart=%g, ftarget=%g): %w",
			s.Variant, s.TStart, s.FTarget, err)
	}

	a := &Assignment{
		Feasible:      true,
		Freqs:         make([]float64, n),
		Powers:        make([]float64, n),
		Gap:           res.Gap,
		NewtonIters:   res.NewtonIters,
		AssembleNanos: res.AssembleNanos,
		FactorNanos:   res.FactorNanos,
	}
	for j := 0; j < n; j++ {
		model := s.Chip.CoreModelOf(j)
		fn := clamp01(res.X[lay.fIdx(j)])
		pn := clamp01(res.X[lay.pIdx(j)])
		a.Freqs[j] = fn * model.FMax
		a.Powers[j] = pn * model.PMax
		a.AvgFreq += a.Freqs[j] / float64(n)
		a.TotalPower += a.Powers[j]
	}
	if s.Variant == VariantGradient {
		a.TGrad = res.X[lay.gIdx()]
	}
	a.PeakTemp = peakTemp(s, a.Powers)
	return a, res.X, warm, nil
}

// SolveUniformBisect solves the uniform-frequency problem by direct
// bisection on the scalar frequency: feasibility of f is monotone (more
// frequency means more power means higher temperatures everywhere), so
// the optimum is the largest feasible f if that exceeds the target, or
// the target itself when the target is feasible. It is an independent
// cross-check of the barrier path and is also what the run-time
// fallback uses for off-grid targets.
//
// It returns the maximum supportable average frequency in Hz and whether
// the requested target is supportable.
func SolveUniformBisect(s *Spec) (maxFreq float64, targetOK bool, err error) {
	return SolveUniformBisectContext(context.Background(), s)
}

// SolveUniformBisectContext is SolveUniformBisect with cancellation:
// ctx is polled at every bisection probe, so a session cancelled
// mid-Step does not keep evaluating thermal rows for a caller that has
// already gone away.
func SolveUniformBisectContext(ctx context.Context, s *Spec) (maxFreq float64, targetOK bool, err error) {
	if err := s.Validate(); err != nil {
		return 0, false, err
	}
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	rows, err := s.tempRows()
	if err != nil {
		return 0, false, err
	}
	fmax := s.Chip.FMax()
	cancelled := false
	feasible := func(fn float64) bool {
		if cancelled || ctx.Err() != nil {
			// Claim infeasibility to collapse the remaining probes
			// cheaply; the flag makes the result unambiguous below.
			cancelled = true
			return false
		}
		return uniformPeak(s, rows, fn) <= s.TMax
	}
	fnMax, ok := solver.BisectMax(0, 1, 1e-7, feasible)
	if cancelled {
		return 0, false, ctx.Err()
	}
	if !ok {
		return 0, false, nil
	}
	return fnMax * fmax, fnMax*fmax+1e-3 >= s.FTarget, nil
}

// uniformPeak returns the peak constrained temperature over the window
// when every core runs at normalized frequency fn.
func uniformPeak(s *Spec, rows []tempRow, fn float64) float64 {
	n := s.Chip.NumCores()
	pn := linalg.NewVector(n)
	for j := 0; j < n; j++ {
		model := s.Chip.CoreModelOf(j)
		pn[j] = model.AtFrequency(fn*model.FMax) / model.PMax
	}
	peak := math.Inf(-1)
	for _, r := range rows {
		if t := r.c0 + r.coef.Dot(pn); t > peak {
			peak = t
		}
	}
	return peak
}

// fullSpeedAssignment evaluates the single candidate point f = fmax
// against prebuilt temperature rows.
func fullSpeedAssignment(s *Spec, rows []tempRow) (*Assignment, error) {
	if uniformPeak(s, rows, 1) > s.TMax {
		return &Assignment{}, nil
	}
	n := s.Chip.NumCores()
	a := &Assignment{Feasible: true, Freqs: make([]float64, n), Powers: make([]float64, n)}
	for j := 0; j < n; j++ {
		model := s.Chip.CoreModelOf(j)
		a.Freqs[j] = model.FMax
		a.Powers[j] = model.PMax
		a.AvgFreq += model.FMax / float64(n)
		a.TotalPower += model.PMax
	}
	a.PeakTemp = peakTemp(s, a.Powers)
	return a, nil
}

// heuristicStart tries cheap strictly feasible points (uniform
// frequency just above the target with a little power slack) before
// paying for a Phase-I solve. Returns nil if none works.
func heuristicStart(s *Spec, lay layout, rows []tempRow, phi float64) linalg.Vector {
	n := s.Chip.NumCores()
	fn := phi + 1e-4*(1-phi) + 1e-9
	if fn >= 1 {
		return nil
	}
	for _, slack := range []float64{1e-3, 1e-2, 5e-2} {
		x := linalg.NewVector(lay.dim)
		ok := true
		pn := linalg.NewVector(n)
		for j := 0; j < n; j++ {
			model := s.Chip.CoreModelOf(j)
			pj := model.AtFrequency(fn*model.FMax)/model.PMax + slack
			if pj >= 1 {
				ok = false
				break
			}
			x[lay.fIdx(j)] = fn
			x[lay.pIdx(j)] = pj
			pn[j] = pj
		}
		if !ok {
			continue
		}
		// Strict temperature feasibility with margin.
		worst := math.Inf(-1)
		for _, r := range rows {
			if t := r.c0 + r.coef.Dot(pn) - s.TMax; t > worst {
				worst = t
			}
		}
		if worst >= -1e-6 {
			continue
		}
		if s.Variant == VariantGradient {
			x[lay.gIdx()] = maxPairGap(s, rows, pn) + 1
		}
		return x
	}
	return nil
}

// rebalanceStart searches for a strictly feasible non-uniform start by
// greedy heat rebalancing: begin at the uniform target frequency and
// repeatedly move a small frequency quantum from the core with the
// hottest predicted trajectory to the coolest core with headroom. The
// frequency sum is preserved, so the workload constraint stays
// satisfied; the procedure succeeds exactly in the boundary band where
// periphery cores hold thermal slack the uniform assignment cannot use
// (the physics behind the paper's Fig. 9/10). Returns nil on failure.
func rebalanceStart(s *Spec, lay layout, rows []tempRow, phi float64) linalg.Vector {
	if lay.variant == VariantUniform {
		return nil // a single shared frequency cannot rebalance
	}
	n := s.Chip.NumCores()
	fn := phi + 1e-6
	if fn >= 1 {
		return nil
	}
	freqs := linalg.Constant(n, fn)
	pn := linalg.NewVector(n)
	const (
		slack   = 1e-4
		quantum = 2e-3
		maxIter = 1200
	)
	blockToCore := make(map[int]int, n)
	for j := 0; j < n; j++ {
		blockToCore[s.Chip.CoreBlockIndex(j)] = j
	}
	for iter := 0; iter < maxIter; iter++ {
		ok := true
		for j := 0; j < n; j++ {
			model := s.Chip.CoreModelOf(j)
			pn[j] = model.AtFrequency(freqs[j]*model.FMax)/model.PMax + slack
			if pn[j] >= 1 || freqs[j] <= 0 || freqs[j] >= 1 {
				ok = false
			}
		}
		if !ok {
			return nil
		}
		// Per-core worst margin (temperature minus limit) over all rows
		// of that core's own block, plus the global worst row.
		margin := linalg.Constant(n, math.Inf(-1))
		worst := math.Inf(-1)
		for _, r := range rows {
			v := r.c0 + r.coef.Dot(pn) - s.TMax
			if v > worst {
				worst = v
			}
			if j, isCore := blockToCore[r.block]; isCore && v > margin[j] {
				margin[j] = v
			}
		}
		if worst < -1e-6 {
			x := linalg.NewVector(lay.dim)
			for j := 0; j < n; j++ {
				x[lay.fIdx(j)] = freqs[j]
				x[lay.pIdx(j)] = pn[j]
			}
			if s.Variant == VariantGradient {
				x[lay.gIdx()] = maxPairGap(s, rows, pn) + 1
			}
			return x
		}
		hot, cool := margin.ArgMax(), 0
		coolMargin := math.Inf(1)
		for j := 0; j < n; j++ {
			if j != hot && freqs[j] < 1-2*quantum && margin[j] < coolMargin {
				cool, coolMargin = j, margin[j]
			}
		}
		if math.IsInf(coolMargin, 1) || hot == cool || freqs[hot] <= 2*quantum {
			return nil
		}
		freqs[hot] -= quantum
		freqs[cool] += quantum
	}
	return nil
}

// maxPairGap returns the largest pairwise core temperature difference
// over the window at normalized powers pn.
func maxPairGap(s *Spec, rows []tempRow, pn linalg.Vector) float64 {
	isCore := make(map[int]bool)
	for _, bi := range s.Chip.Floorplan().CoreIndices() {
		isCore[bi] = true
	}
	byStep := make(map[int][]float64)
	for _, r := range rows {
		if isCore[r.block] {
			byStep[r.step] = append(byStep[r.step], r.c0+r.coef.Dot(pn))
		}
	}
	var gap float64
	for _, temps := range byStep {
		v := linalg.Vector(temps)
		if g := v.Max() - v.Min(); g > gap {
			gap = g
		}
	}
	return gap
}

// neutralStart is the Phase-I entry point when no heuristic start is
// strictly feasible.
func neutralStart(lay layout, phi float64) linalg.Vector {
	x := linalg.NewVector(lay.dim)
	fn := math.Min(0.9, phi+0.05)
	n := lay.nCores
	vars := n
	if lay.variant == VariantUniform {
		vars = 1
	}
	for j := 0; j < vars; j++ {
		x[lay.fIdx(j)] = fn
		x[lay.pIdx(j)] = math.Min(0.95, fn*fn+0.05)
	}
	if lay.variant == VariantGradient {
		x[lay.gIdx()] = 50
	}
	return x
}

// peakTemp forward-simulates the window at the given core powers and
// returns the hottest core temperature reached — the verification the
// controller's guarantee rests on.
func peakTemp(s *Spec, corePowers []float64) float64 {
	chip := s.Chip
	fp := chip.Floorplan()
	nb := fp.NumBlocks()
	p := chip.FixedPower()
	for j, w := range corePowers {
		p[chip.CoreBlockIndex(j)] = w
	}
	t0 := s.startTemps(nb)
	peak := math.Inf(-1)
	cores := fp.CoreIndices()
	m := s.Window.Steps()
	for k := 1; k <= m; k++ {
		t, err := s.Window.TempAt(k, t0, p)
		if err != nil {
			return math.NaN()
		}
		for _, ci := range cores {
			if t[ci] > peak {
				peak = t[ci]
			}
		}
	}
	return peak
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
