// Package cli holds the few lines every protemp command shares, so
// the tools cannot drift apart in how they log and exit: bare
// messages (no timestamps — these are CLIs, not daemons) prefixed
// with the tool's name, and an explicit-status fatal for tools whose
// exit codes are part of their contract.
package cli

import (
	"log"
	"os"
)

// Init configures the standard logger the way every protemp tool
// logs: flags cleared and the tool name as prefix, so captured or
// piped diagnostics say who spoke. Call it first in main.
func Init(tool string) {
	log.SetFlags(0)
	log.SetPrefix(tool + ": ")
}

// Fatalf logs the message and exits with the given status. It exists
// for tools whose exit codes are API (protemp-benchdiff: 1 = real
// regression, 2 = unreadable input); tools without such a contract
// just use log.Fatal, which is Fatalf with code 1.
func Fatalf(code int, format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(code)
}
