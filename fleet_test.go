package protemp

import (
	"context"
	"testing"
)

// TestRunFleetSharedEngineSingleGeneration is the fleet acceptance
// check: a 12-run batch (4 scenarios × 3 policies) completes in
// parallel on one shared Engine with exactly one Phase-1 table
// generation per distinct table spec — asserted through both the
// cache stats and the engine metrics snapshot.
func TestRunFleetSharedEngineSingleGeneration(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	spec := FleetSpec{
		Scenarios: []string{"mixed", "bursty", "diurnal", "adversarial"},
		Policies: []FleetPolicy{
			{Kind: "protemp"},
			{Kind: "basic-dfs"},
			{Kind: "no-tc"},
		},
		Seeds:      []int64{1},
		Workers:    4,
		Horizon:    2,
		MaxSimTime: 6,
	}
	res, err := RunFleet(context.Background(), e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 12 || res.Completed != 12 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("runs/completed/failed/skipped = %d/%d/%d/%d, want 12/12/0/0",
			len(res.Runs), res.Completed, res.Failed, res.Skipped)
	}

	// All four scenarios keep the engine's TMax, so the four parallel
	// protemp cells share a single table spec — and must have cost
	// exactly one Phase-1 sweep between them.
	distinctKeys := map[string]bool{}
	for _, rr := range res.Runs {
		if rr.Summary != nil && rr.Summary.TableKey != "" {
			distinctKeys[rr.Summary.TableKey] = true
		}
	}
	if len(distinctKeys) != 1 {
		t.Fatalf("distinct table keys = %d, want 1", len(distinctKeys))
	}
	stats := e.CacheStats()
	if stats.Generations != uint64(len(distinctKeys)) {
		t.Fatalf("generations = %d, want %d (one per distinct spec)", stats.Generations, len(distinctKeys))
	}
	if stats.Hits+stats.Shared < 3 {
		t.Fatalf("expected the other protemp cells to share the table (hits %d, shared %d)", stats.Hits, stats.Shared)
	}

	// The engine metrics snapshot carries both the cache counters and
	// the fleet progress instruments for a serving layer to merge.
	snap := e.MetricsSnapshot()
	if snap["table_cache_generations"] != stats.Generations {
		t.Fatalf("snapshot generations = %d, want %d", snap["table_cache_generations"], stats.Generations)
	}
	if snap["fleet_runs_completed"] != 12 || snap["fleet_batches"] != 1 {
		t.Fatalf("fleet counters missing from engine snapshot: %v", snap)
	}
	if snap["fleet_runs_inflight"] != 0 {
		t.Fatalf("inflight gauge stuck at %d", snap["fleet_runs_inflight"])
	}
}

// TestRunFleetCustomRegistry drives the facade with a custom scenario.
func TestRunFleetCustomRegistry(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	reg := FleetScenarios()
	base, _ := reg.Get("mixed")
	custom := base
	custom.Name = "my-scenario"
	custom.Description = "registered by the caller"
	if err := reg.Register(custom); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFleetScenarios(context.Background(), FleetSpec{
		Scenarios:  []string{"my-scenario"},
		Policies:   []FleetPolicy{{Kind: "no-tc"}},
		Horizon:    2,
		MaxSimTime: 6,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed)
	}
}
