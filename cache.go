package protemp

import (
	"container/list"
	"context"
	"sync"

	"protemp/internal/core"
	"protemp/internal/metrics"
)

// TableStore is the persistence tier under the engine's in-memory
// table cache: a write-through second level keyed by
// core.TableSpec.CacheKey(). Load returns (nil, false, nil) when the
// key is absent; errors are reserved for real failures (corrupt file,
// I/O). Implementations must be safe for concurrent use.
// WithTableStoreDir installs the built-in directory-backed store;
// WithTableStore accepts any implementation.
type TableStore interface {
	Load(key string) (*core.Table, bool, error)
	Save(key string, t *core.Table) error
}

// CacheStats reports engine-level table-cache activity. Generations is
// the number of Phase-1 sweeps actually executed — the observable that
// concurrent sessions on one configuration share a single generation.
type CacheStats struct {
	// Hits counts lookups served from a completed cached table.
	Hits uint64
	// Shared counts lookups that attached to an in-flight generation
	// started by another caller.
	Shared uint64
	// Misses counts lookups that missed the in-memory tier.
	Misses uint64
	// Generations counts Phase-1 sweeps executed (Misses minus
	// StoreHits).
	Generations uint64
	// Evictions counts tables dropped by the LRU policy.
	Evictions uint64
	// StoreHits counts misses served by the persistent store instead of
	// a Phase-1 sweep (warm restarts, pre-generated tables).
	StoreHits uint64
	// StoreMisses counts misses that consulted the store and found
	// nothing.
	StoreMisses uint64
	// StoreWrites counts tables written through to the store.
	StoreWrites uint64
	// StoreErrors counts store loads/saves that failed; store failures
	// degrade to a fresh generation, never to a caller-visible error.
	StoreErrors uint64
	// FetchHits counts store misses served by the network tier (a
	// cluster peer's store) instead of a Phase-1 sweep; FetchMisses
	// counts fetcher consultations that fell through to generation.
	// Both stay zero without WithTableFetcher.
	FetchHits   uint64
	FetchMisses uint64
	// Size is the current number of cached (or in-flight) tables.
	Size int
}

// cacheCounters are the atomic counters behind CacheStats, registered
// in a metrics.Registry so a serving layer can expose them directly.
type cacheCounters struct {
	hits        *metrics.Counter
	shared      *metrics.Counter
	misses      *metrics.Counter
	generations *metrics.Counter
	evictions   *metrics.Counter
	storeHits   *metrics.Counter
	storeMisses *metrics.Counter
	storeWrites *metrics.Counter
	storeErrors *metrics.Counter
	fetchHits   *metrics.Counter
	fetchMisses *metrics.Counter
}

func newCacheCounters(reg *metrics.Registry) cacheCounters {
	return cacheCounters{
		hits:        reg.Counter("table_cache_hits"),
		shared:      reg.Counter("table_cache_singleflight_shared"),
		misses:      reg.Counter("table_cache_misses"),
		generations: reg.Counter("table_cache_generations"),
		evictions:   reg.Counter("table_cache_evictions"),
		storeHits:   reg.Counter("table_store_hits"),
		storeMisses: reg.Counter("table_store_misses"),
		storeWrites: reg.Counter("table_store_writes"),
		storeErrors: reg.Counter("table_store_errors"),
		fetchHits:   reg.Counter("table_fetch_hits"),
		fetchMisses: reg.Counter("table_fetch_misses"),
	}
}

// cacheEntry is one table slot; done is closed when generation
// finishes, after table/err are set (the close is the happens-before
// edge that lets waiters read them without the lock).
type cacheEntry struct {
	key   string
	done  chan struct{}
	table *core.Table
	err   error
	elem  *list.Element
}

// tableCache is an LRU of generated Phase-1 tables with singleflight
// semantics (concurrent callers for one key share a single generation)
// and an optional write-through persistent second tier: a miss
// consults the store before paying for a Phase-1 sweep, and a
// completed sweep is written back so the next process starts warm.
type tableCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   *list.List   // front = most recently used
	store   TableStore   // nil = memory only
	fetcher TableFetcher // nil = no network tier
	c       cacheCounters
}

func newTableCache(capacity int, store TableStore, fetcher TableFetcher, reg *metrics.Registry) *tableCache {
	return &tableCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
		store:   store,
		fetcher: fetcher,
		c:       newCacheCounters(reg),
	}
}

// fill resolves a miss outside the cache lock: persistent store first,
// then the network tier (a cluster peer's store), Phase-1 generation
// last. Both a fetched and a freshly generated table are written
// through to the store. Store and fetch failures are counted and
// degrade to the next tier — a bad disk or a dark peer must not take
// down the control plane.
func (c *tableCache) fill(ctx context.Context, key string, gen func() (*core.Table, error)) (*core.Table, error) {
	if c.store != nil {
		t, ok, err := c.store.Load(key)
		if err != nil {
			c.c.storeErrors.Inc()
		} else if ok {
			c.c.storeHits.Inc()
			return t, nil
		} else {
			c.c.storeMisses.Inc()
		}
	}
	if c.fetcher != nil {
		if t, ok := c.fetcher(ctx, key); ok {
			c.c.fetchHits.Inc()
			c.writeThrough(key, t)
			return t, nil
		}
		c.c.fetchMisses.Inc()
	}
	c.c.generations.Inc()
	t, err := gen()
	if err == nil {
		c.writeThrough(key, t)
	}
	return t, err
}

// writeThrough persists one resolved table; failures degrade to
// memory-only and are counted.
func (c *tableCache) writeThrough(key string, t *core.Table) {
	if c.store == nil {
		return
	}
	if serr := c.store.Save(key, t); serr != nil {
		c.c.storeErrors.Inc()
	} else {
		c.c.storeWrites.Inc()
	}
}

// lookup returns the table for key only if it is already materialized
// locally — a completed in-memory entry or a store hit — without
// generating, fetching, or joining an in-flight generation. It is the
// read side a node serves to its peers: answering only from local
// tiers keeps peer fetches from cascading across the ring.
func (c *tableCache) lookup(key string) (*core.Table, bool) {
	if c.cap != 0 {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.done:
				if e.err == nil {
					c.c.hits.Inc()
					c.order.MoveToFront(e.elem)
					t := e.table
					c.mu.Unlock()
					return t, true
				}
			default:
			}
		}
		c.mu.Unlock()
	}
	if c.store != nil {
		t, ok, err := c.store.Load(key)
		if err != nil {
			c.c.storeErrors.Inc()
		} else if ok {
			c.c.storeHits.Inc()
			return t, true
		}
	}
	return nil, false
}

// get returns the table for key, running the fill (store load or
// Phase-1 generation) at most once across all concurrent callers of
// the same key. Waiters blocked on another caller's fill honor their
// own ctx. A failed fill is dropped so a later call can retry.
func (c *tableCache) get(ctx context.Context, key string, gen func() (*core.Table, error)) (*core.Table, error) {
	if c.cap == 0 { // in-memory caching disabled; the store still works
		c.c.misses.Inc()
		return c.fill(ctx, key, gen)
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			select {
			case <-e.done:
				if e.err == nil {
					c.c.hits.Inc()
					c.order.MoveToFront(e.elem)
					t := e.table
					c.mu.Unlock()
					return t, nil
				}
				// A failed entry lingering only because its generator
				// hasn't removed it yet: drop it and regenerate.
				c.removeLocked(e)
				ok = false
			default:
				// In flight elsewhere: wait outside the lock.
				c.c.shared.Inc()
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if e.err == nil {
					return e.table, nil
				}
				// The generating caller failed (possibly its own
				// cancellation); retry under our ctx.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if !ok {
			e = &cacheEntry{key: key, done: make(chan struct{})}
			e.elem = c.order.PushFront(e)
			c.entries[key] = e
			c.c.misses.Inc()
			c.mu.Unlock()

			tbl, err := c.fill(ctx, key, gen)

			c.mu.Lock()
			e.table, e.err = tbl, err
			close(e.done)
			if err != nil {
				c.removeLocked(e)
			} else {
				c.evictLocked()
			}
			c.mu.Unlock()
			return tbl, err
		}
	}
}

// removeLocked drops e from the map and recency list; idempotent.
func (c *tableCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.order.Remove(e.elem)
		e.elem = nil
	}
}

// evictLocked enforces the capacity bound, least-recently-used first,
// never evicting an in-flight generation (waiters hold its channel).
func (c *tableCache) evictLocked() {
	for len(c.entries) > c.cap {
		el := c.order.Back()
		for el != nil {
			e := el.Value.(*cacheEntry)
			finished := false
			select {
			case <-e.done:
				finished = true
			default:
			}
			if finished {
				c.removeLocked(e)
				c.c.evictions.Inc()
				break
			}
			el = el.Prev()
		}
		if el == nil {
			return // everything in flight; transiently over capacity
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *tableCache) Stats() CacheStats {
	s := CacheStats{
		Hits:        c.c.hits.Value(),
		Shared:      c.c.shared.Value(),
		Misses:      c.c.misses.Value(),
		Generations: c.c.generations.Value(),
		Evictions:   c.c.evictions.Value(),
		StoreHits:   c.c.storeHits.Value(),
		StoreMisses: c.c.storeMisses.Value(),
		StoreWrites: c.c.storeWrites.Value(),
		StoreErrors: c.c.storeErrors.Value(),
		FetchHits:   c.c.fetchHits.Value(),
		FetchMisses: c.c.fetchMisses.Value(),
	}
	c.mu.Lock()
	s.Size = len(c.entries)
	c.mu.Unlock()
	return s
}
