package protemp

import (
	"container/list"
	"context"
	"sync"

	"protemp/internal/core"
	"protemp/internal/metrics"
)

// TableStore is the persistence tier under the engine's in-memory
// table cache: a write-through second level keyed by
// core.TableSpec.CacheKey(). Load returns (nil, false, nil) when the
// key is absent; errors are reserved for real failures (corrupt file,
// I/O). Implementations must be safe for concurrent use.
// WithTableStoreDir installs the built-in directory-backed store;
// WithTableStore accepts any implementation.
type TableStore interface {
	Load(key string) (*core.Table, bool, error)
	Save(key string, t *core.Table) error
}

// CacheStats reports engine-level table-cache activity. Generations is
// the number of Phase-1 sweeps actually executed — the observable that
// concurrent sessions on one configuration share a single generation.
type CacheStats struct {
	// Hits counts lookups served from a completed cached table.
	Hits uint64
	// Shared counts lookups that attached to an in-flight generation
	// started by another caller.
	Shared uint64
	// Misses counts lookups that missed the in-memory tier.
	Misses uint64
	// Generations counts Phase-1 sweeps executed (Misses minus
	// StoreHits).
	Generations uint64
	// Evictions counts tables dropped by the LRU policy.
	Evictions uint64
	// StoreHits counts misses served by the persistent store instead of
	// a Phase-1 sweep (warm restarts, pre-generated tables).
	StoreHits uint64
	// StoreMisses counts misses that consulted the store and found
	// nothing.
	StoreMisses uint64
	// StoreWrites counts tables written through to the store.
	StoreWrites uint64
	// StoreErrors counts store loads/saves that failed; store failures
	// degrade to a fresh generation, never to a caller-visible error.
	StoreErrors uint64
	// Size is the current number of cached (or in-flight) tables.
	Size int
}

// cacheCounters are the atomic counters behind CacheStats, registered
// in a metrics.Registry so a serving layer can expose them directly.
type cacheCounters struct {
	hits        *metrics.Counter
	shared      *metrics.Counter
	misses      *metrics.Counter
	generations *metrics.Counter
	evictions   *metrics.Counter
	storeHits   *metrics.Counter
	storeMisses *metrics.Counter
	storeWrites *metrics.Counter
	storeErrors *metrics.Counter
}

func newCacheCounters(reg *metrics.Registry) cacheCounters {
	return cacheCounters{
		hits:        reg.Counter("table_cache_hits"),
		shared:      reg.Counter("table_cache_singleflight_shared"),
		misses:      reg.Counter("table_cache_misses"),
		generations: reg.Counter("table_cache_generations"),
		evictions:   reg.Counter("table_cache_evictions"),
		storeHits:   reg.Counter("table_store_hits"),
		storeMisses: reg.Counter("table_store_misses"),
		storeWrites: reg.Counter("table_store_writes"),
		storeErrors: reg.Counter("table_store_errors"),
	}
}

// cacheEntry is one table slot; done is closed when generation
// finishes, after table/err are set (the close is the happens-before
// edge that lets waiters read them without the lock).
type cacheEntry struct {
	key   string
	done  chan struct{}
	table *core.Table
	err   error
	elem  *list.Element
}

// tableCache is an LRU of generated Phase-1 tables with singleflight
// semantics (concurrent callers for one key share a single generation)
// and an optional write-through persistent second tier: a miss
// consults the store before paying for a Phase-1 sweep, and a
// completed sweep is written back so the next process starts warm.
type tableCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used
	store   TableStore // nil = memory only
	c       cacheCounters
}

func newTableCache(capacity int, store TableStore, reg *metrics.Registry) *tableCache {
	return &tableCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
		store:   store,
		c:       newCacheCounters(reg),
	}
}

// fill resolves a miss outside the cache lock: persistent store first,
// Phase-1 generation second, write-through on a fresh generation.
// Store failures are counted and degrade to generation — a bad disk
// must not take down the control plane.
func (c *tableCache) fill(key string, gen func() (*core.Table, error)) (*core.Table, error) {
	if c.store != nil {
		t, ok, err := c.store.Load(key)
		if err != nil {
			c.c.storeErrors.Inc()
		} else if ok {
			c.c.storeHits.Inc()
			return t, nil
		} else {
			c.c.storeMisses.Inc()
		}
	}
	c.c.generations.Inc()
	t, err := gen()
	if err == nil && c.store != nil {
		if serr := c.store.Save(key, t); serr != nil {
			c.c.storeErrors.Inc()
		} else {
			c.c.storeWrites.Inc()
		}
	}
	return t, err
}

// get returns the table for key, running the fill (store load or
// Phase-1 generation) at most once across all concurrent callers of
// the same key. Waiters blocked on another caller's fill honor their
// own ctx. A failed fill is dropped so a later call can retry.
func (c *tableCache) get(ctx context.Context, key string, gen func() (*core.Table, error)) (*core.Table, error) {
	if c.cap == 0 { // in-memory caching disabled; the store still works
		c.c.misses.Inc()
		return c.fill(key, gen)
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			select {
			case <-e.done:
				if e.err == nil {
					c.c.hits.Inc()
					c.order.MoveToFront(e.elem)
					t := e.table
					c.mu.Unlock()
					return t, nil
				}
				// A failed entry lingering only because its generator
				// hasn't removed it yet: drop it and regenerate.
				c.removeLocked(e)
				ok = false
			default:
				// In flight elsewhere: wait outside the lock.
				c.c.shared.Inc()
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if e.err == nil {
					return e.table, nil
				}
				// The generating caller failed (possibly its own
				// cancellation); retry under our ctx.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if !ok {
			e = &cacheEntry{key: key, done: make(chan struct{})}
			e.elem = c.order.PushFront(e)
			c.entries[key] = e
			c.c.misses.Inc()
			c.mu.Unlock()

			tbl, err := c.fill(key, gen)

			c.mu.Lock()
			e.table, e.err = tbl, err
			close(e.done)
			if err != nil {
				c.removeLocked(e)
			} else {
				c.evictLocked()
			}
			c.mu.Unlock()
			return tbl, err
		}
	}
}

// removeLocked drops e from the map and recency list; idempotent.
func (c *tableCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.order.Remove(e.elem)
		e.elem = nil
	}
}

// evictLocked enforces the capacity bound, least-recently-used first,
// never evicting an in-flight generation (waiters hold its channel).
func (c *tableCache) evictLocked() {
	for len(c.entries) > c.cap {
		el := c.order.Back()
		for el != nil {
			e := el.Value.(*cacheEntry)
			finished := false
			select {
			case <-e.done:
				finished = true
			default:
			}
			if finished {
				c.removeLocked(e)
				c.c.evictions.Inc()
				break
			}
			el = el.Prev()
		}
		if el == nil {
			return // everything in flight; transiently over capacity
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *tableCache) Stats() CacheStats {
	s := CacheStats{
		Hits:        c.c.hits.Value(),
		Shared:      c.c.shared.Value(),
		Misses:      c.c.misses.Value(),
		Generations: c.c.generations.Value(),
		Evictions:   c.c.evictions.Value(),
		StoreHits:   c.c.storeHits.Value(),
		StoreMisses: c.c.storeMisses.Value(),
		StoreWrites: c.c.storeWrites.Value(),
		StoreErrors: c.c.storeErrors.Value(),
	}
	c.mu.Lock()
	s.Size = len(c.entries)
	c.mu.Unlock()
	return s
}
