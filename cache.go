package protemp

import (
	"container/list"
	"context"
	"sync"

	"protemp/internal/core"
)

// CacheStats reports engine-level table-cache activity. Generations is
// the number of Phase-1 sweeps actually executed — the observable that
// concurrent sessions on one configuration share a single generation.
type CacheStats struct {
	// Hits counts lookups served from a completed cached table.
	Hits uint64
	// Shared counts lookups that attached to an in-flight generation
	// started by another caller.
	Shared uint64
	// Misses counts lookups that had to start a generation.
	Misses uint64
	// Generations counts Phase-1 sweeps executed (equals Misses).
	Generations uint64
	// Evictions counts tables dropped by the LRU policy.
	Evictions uint64
	// Size is the current number of cached (or in-flight) tables.
	Size int
}

// cacheEntry is one table slot; done is closed when generation
// finishes, after table/err are set (the close is the happens-before
// edge that lets waiters read them without the lock).
type cacheEntry struct {
	key   string
	done  chan struct{}
	table *core.Table
	err   error
	elem  *list.Element
}

// tableCache is an LRU of generated Phase-1 tables with singleflight
// semantics: concurrent callers for one key share a single generation.
type tableCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used
	stats   CacheStats
}

func newTableCache(capacity int) *tableCache {
	return &tableCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
	}
}

// get returns the table for key, running gen at most once across all
// concurrent callers of the same key. Waiters blocked on another
// caller's generation honor their own ctx. A failed generation is
// dropped so a later call can retry.
func (c *tableCache) get(ctx context.Context, key string, gen func() (*core.Table, error)) (*core.Table, error) {
	if c.cap == 0 { // caching disabled
		c.mu.Lock()
		c.stats.Misses++
		c.stats.Generations++
		c.mu.Unlock()
		return gen()
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			select {
			case <-e.done:
				if e.err == nil {
					c.stats.Hits++
					c.order.MoveToFront(e.elem)
					t := e.table
					c.mu.Unlock()
					return t, nil
				}
				// A failed entry lingering only because its generator
				// hasn't removed it yet: drop it and regenerate.
				c.removeLocked(e)
				ok = false
			default:
				// In flight elsewhere: wait outside the lock.
				c.stats.Shared++
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if e.err == nil {
					return e.table, nil
				}
				// The generating caller failed (possibly its own
				// cancellation); retry under our ctx.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if !ok {
			e = &cacheEntry{key: key, done: make(chan struct{})}
			e.elem = c.order.PushFront(e)
			c.entries[key] = e
			c.stats.Misses++
			c.stats.Generations++
			c.mu.Unlock()

			tbl, err := gen()

			c.mu.Lock()
			e.table, e.err = tbl, err
			close(e.done)
			if err != nil {
				c.removeLocked(e)
			} else {
				c.evictLocked()
			}
			c.mu.Unlock()
			return tbl, err
		}
	}
}

// removeLocked drops e from the map and recency list; idempotent.
func (c *tableCache) removeLocked(e *cacheEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.order.Remove(e.elem)
		e.elem = nil
	}
}

// evictLocked enforces the capacity bound, least-recently-used first,
// never evicting an in-flight generation (waiters hold its channel).
func (c *tableCache) evictLocked() {
	for len(c.entries) > c.cap {
		el := c.order.Back()
		for el != nil {
			e := el.Value.(*cacheEntry)
			finished := false
			select {
			case <-e.done:
				finished = true
			default:
			}
			if finished {
				c.removeLocked(e)
				c.stats.Evictions++
				break
			}
			el = el.Prev()
		}
		if el == nil {
			return // everything in flight; transiently over capacity
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *tableCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.entries)
	return s
}
