package protemp

import (
	"context"
	"fmt"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// Option configures an Engine. Options are applied over the paper's
// defaults (Niagara-8 floorplan, 1 GHz / 4 W cores, 30% uncore share,
// 0.4 ms thermal step, 250-step = 100 ms DFS window, 100 °C limit,
// per-core variable-frequency variant). Unlike the deprecated
// SystemConfig, an option always takes effect, so legitimate zero
// values — WithUncoreShare(0), WithTMax(0) rejected explicitly rather
// than silently replaced — are representable.
type Option func(*engineConfig) error

// engineConfig is the resolved option set an Engine is built from.
type engineConfig struct {
	fp            *floorplan.Floorplan
	coreModel     power.CoreModel
	uncoreShare   float64
	thermalParams thermal.Params
	dt            float64
	windowSteps   int
	tmax          float64
	variant       core.Variant
	tstarts       []float64
	ftargets      []float64 // nil means DefaultFTargets(fmax)
	workers       int
	cacheSize     int
	store         TableStore
	fetcher       TableFetcher
	observer      core.SweepObserver
	// Distributed-MPC (ADMM) configuration; zero fields select the
	// dmpc package defaults.
	clusters       int
	admmMaxOuter   int
	admmTolC       float64
	admmAcceptTolC float64
	admmWorkers    int
	// Flight-recorder configuration; zero lastN leaves tracing off.
	flightLastN int
	flightSlowN int
}

func defaultEngineConfig() engineConfig {
	return engineConfig{
		fp:            floorplan.Niagara(),
		coreModel:     power.NiagaraCore(),
		uncoreShare:   power.UncoreShare,
		thermalParams: thermal.DefaultParams(),
		dt:            0.4e-3,
		windowSteps:   250,
		tmax:          100,
		variant:       core.VariantVariable,
		tstarts:       core.DefaultTStarts(),
		ftargets:      nil,
		workers:       0,
		cacheSize:     8,
	}
}

// WithFloorplan sets the chip floorplan (default the paper's
// Niagara-8 plan).
func WithFloorplan(fp *floorplan.Floorplan) Option {
	return func(c *engineConfig) error {
		if fp == nil {
			return fmt.Errorf("protemp: nil floorplan")
		}
		c.fp = fp
		return nil
	}
}

// WithCoreModel sets the per-core DVFS power law (default the paper's
// 1 GHz / 4 W cores).
func WithCoreModel(m power.CoreModel) Option {
	return func(c *engineConfig) error {
		if err := m.Validate(); err != nil {
			return err
		}
		c.coreModel = m
		return nil
	}
}

// WithUncoreShare sets the fixed non-core power as a fraction of the
// cores' total maximum power (default the paper's 0.30). Zero is a
// legitimate value: a chip whose caches and interconnect draw nothing.
func WithUncoreShare(share float64) Option {
	return func(c *engineConfig) error {
		if share < 0 {
			return fmt.Errorf("protemp: negative uncore share %g", share)
		}
		c.uncoreShare = share
		return nil
	}
}

// WithThermalParams sets the RC-synthesis parameters (default
// thermal.DefaultParams()).
func WithThermalParams(p thermal.Params) Option {
	return func(c *engineConfig) error {
		c.thermalParams = p
		return nil
	}
}

// WithWindow sets the thermal co-simulation step dt (seconds) and the
// DFS window horizon in steps; dt·steps is the control period (the
// paper uses 0.4 ms × 250 = 100 ms).
func WithWindow(dt float64, steps int) Option {
	return func(c *engineConfig) error {
		if dt <= 0 {
			return fmt.Errorf("protemp: non-positive thermal step %g", dt)
		}
		if steps < 1 {
			return fmt.Errorf("protemp: window of %d steps", steps)
		}
		c.dt = dt
		c.windowSteps = steps
		return nil
	}
}

// WithTMax sets the temperature limit in °C (default 100).
func WithTMax(tmax float64) Option {
	return func(c *engineConfig) error {
		if tmax <= 0 {
			return fmt.Errorf("protemp: non-positive tmax %g", tmax)
		}
		c.tmax = tmax
		return nil
	}
}

// WithVariant sets the default optimization model variant used by
// Optimize, GenerateTable and NewSession (default
// core.VariantVariable).
func WithVariant(v core.Variant) Option {
	return func(c *engineConfig) error {
		switch v {
		case core.VariantVariable, core.VariantUniform, core.VariantGradient:
			c.variant = v
			return nil
		default:
			return fmt.Errorf("protemp: unknown variant %v", v)
		}
	}
}

// WithTableGrid sets the default Phase-1 grids: ascending starting
// temperatures (°C) and ascending target frequencies (Hz). Defaults
// are core.DefaultTStarts() and core.DefaultFTargets(fmax).
func WithTableGrid(tstarts, ftargets []float64) Option {
	return func(c *engineConfig) error {
		if len(tstarts) == 0 || len(ftargets) == 0 {
			return fmt.Errorf("protemp: empty table grid (%d temps, %d freqs)", len(tstarts), len(ftargets))
		}
		c.tstarts = append([]float64(nil), tstarts...)
		c.ftargets = append([]float64(nil), ftargets...)
		return nil
	}
}

// SweepProgress reports one completed grid point of a Phase-1 sweep;
// SweepObserver receives it. Aliased from internal/core so external
// modules can name the types the observer API trades in.
type (
	SweepProgress = core.SweepProgress
	SweepObserver = core.SweepObserver
)

// WithSweepObserver installs a progress callback invoked after every
// grid-point solve of a Phase-1 sweep run by this engine — the hook a
// CLI progress display or a job status endpoint taps. Calls are
// serialized but may come from any sweep worker goroutine, and only
// actual generations report progress: table-cache or store hits never
// invoke the observer. A nil observer is rejected; simply omit the
// option instead.
func WithSweepObserver(fn SweepObserver) Option {
	return func(c *engineConfig) error {
		if fn == nil {
			return fmt.Errorf("protemp: nil sweep observer")
		}
		c.observer = fn
		return nil
	}
}

// WithWorkers bounds the parallel Phase-1 solves (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *engineConfig) error {
		if n < 0 {
			return fmt.Errorf("protemp: negative worker count %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithTableCacheSize bounds the engine's LRU cache of generated
// Phase-1 tables (default 8). Zero disables in-memory caching;
// concurrent callers then each pay for their own generation (though a
// configured table store is still consulted).
func WithTableCacheSize(n int) Option {
	return func(c *engineConfig) error {
		if n < 0 {
			return fmt.Errorf("protemp: negative cache size %d", n)
		}
		c.cacheSize = n
		return nil
	}
}

// WithTableStore installs a persistent second tier under the engine's
// table cache: in-memory misses consult the store before running a
// Phase-1 sweep, and fresh sweeps are written through, so restarts
// come up warm. Store failures degrade to generation and are counted
// in CacheStats.StoreErrors, never surfaced to callers.
func WithTableStore(ts TableStore) Option {
	return func(c *engineConfig) error {
		if ts == nil {
			return fmt.Errorf("protemp: nil table store")
		}
		c.store = ts
		return nil
	}
}

// TableFetcher is a network tier under the engine's table cache: given
// a cache key it returns the table from elsewhere (a cluster peer's
// store, a blob service) or reports a miss. It runs after the local
// persistent store misses and before a Phase-1 generation is paid for;
// a fetched table is written through to the local store. Fetchers must
// be safe for concurrent use and should treat every failure as a miss
// — the engine always falls back to generating locally.
type TableFetcher func(ctx context.Context, key string) (*core.Table, bool)

// WithTableFetcher installs a network tier between the engine's
// persistent table store and Phase-1 generation: on a store miss the
// fetcher is consulted, and only when it also misses does the engine
// run the sweep. Combined with each node serving its stored tables,
// this turns N nodes' stores into one content-addressed table service.
func WithTableFetcher(fn TableFetcher) Option {
	return func(c *engineConfig) error {
		if fn == nil {
			return fmt.Errorf("protemp: nil table fetcher")
		}
		c.fetcher = fn
		return nil
	}
}

// WithClusters sets the cluster count a distributed-MPC session or
// policy partitions the floorplan into (default one cluster per 8
// cores). It affects only the dmpc mode; table and online sessions
// ignore it.
func WithClusters(k int) Option {
	return func(c *engineConfig) error {
		if k < 1 {
			return fmt.Errorf("protemp: cluster count %d < 1", k)
		}
		c.clusters = k
		return nil
	}
}

// WithADMMIterations bounds the consensus (ADMM outer) iterations a
// distributed-MPC window may spend before accepting or falling back
// (default 6).
func WithADMMIterations(n int) Option {
	return func(c *engineConfig) error {
		if n < 1 {
			return fmt.Errorf("protemp: ADMM iteration bound %d < 1", n)
		}
		c.admmMaxOuter = n
		return nil
	}
}

// WithADMMTolerance sets the consensus stopping tolerance in °C: the
// largest admissible owner-vs-observer disagreement on a boundary
// block's temperature (default 0.25).
func WithADMMTolerance(tolC float64) Option {
	return func(c *engineConfig) error {
		if tolC <= 0 {
			return fmt.Errorf("protemp: non-positive ADMM tolerance %g", tolC)
		}
		c.admmTolC = tolC
		return nil
	}
}

// WithADMMAcceptance sets the acceptance band in °C for an unconverged
// distributed-MPC iterate: primal residuals at or under it keep the
// latest decision (the duals carry the contraction into the next
// window), while residuals beyond it trigger the fallback ladder
// (default 1.0, never below the consensus tolerance).
func WithADMMAcceptance(tolC float64) Option {
	return func(c *engineConfig) error {
		if tolC <= 0 {
			return fmt.Errorf("protemp: non-positive ADMM acceptance band %g", tolC)
		}
		c.admmAcceptTolC = tolC
		return nil
	}
}

// WithFlightRecorder enables the engine's solve-trace flight recorder:
// every MPC Session.Step records a structured trace (warm-seed
// decision, ladder rung, barrier centerings, and for distributed
// sessions per-cluster spans plus the ADMM residual timeline), and the
// recorder retains the last lastN traces, the slowest slowN, and every
// errored or fallback step. Non-positive arguments select the defaults
// (obs.DefaultLastN / obs.DefaultSlowN). Without this option tracing
// is off and Step pays only a nil check.
func WithFlightRecorder(lastN, slowN int) Option {
	return func(c *engineConfig) error {
		if lastN <= 0 {
			lastN = -1 // normalized: any non-positive means "default"
		}
		if slowN <= 0 {
			slowN = -1
		}
		c.flightLastN = lastN
		c.flightSlowN = slowN
		return nil
	}
}

// WithADMMWorkers bounds the cluster subproblems solved in parallel
// per consensus iteration (default GOMAXPROCS).
func WithADMMWorkers(n int) Option {
	return func(c *engineConfig) error {
		if n < 0 {
			return fmt.Errorf("protemp: negative ADMM worker count %d", n)
		}
		c.admmWorkers = n
		return nil
	}
}

// WithTableStoreDir is WithTableStore backed by the built-in
// directory store (one atomic file per table, shareable between
// processes). The directory is created if needed.
func WithTableStoreDir(dir string) Option {
	return func(c *engineConfig) error {
		ts, err := OpenTableStore(dir)
		if err != nil {
			return err
		}
		c.store = ts
		return nil
	}
}
