// Package protemp is the public facade of the Pro-Temp reproduction —
// the convex-optimization-based pro-active temperature controller for
// multi-core chips from Murali et al., "Temperature Control of
// High-Performance Multi-core Platforms Using Convex Optimization"
// (DATE 2008).
//
// The heavy lifting lives in the internal packages (floorplan, thermal,
// power, solver, core, workload, sim, experiments); this package wires
// them together behind the Engine API: build a modeled chip once with
// functional options, then drive concurrent optimizations, cached
// Phase-1 table generations, closed-loop simulations and control
// Sessions against it, all under context cancellation. See the
// examples/ directory for end-to-end programs and DESIGN.md for the
// architecture.
//
// The SystemConfig/System API below is the package's original
// single-shot facade, kept as a thin deprecated shim over Engine for
// existing callers.
package protemp

import (
	"context"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/sim"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// SystemConfig describes a modeled platform.
//
// Deprecated: use New with functional options instead. SystemConfig's
// zero-value defaulting cannot express legitimate zero values (for
// example UncoreShare: 0 silently becomes the paper's 30%);
// WithUncoreShare(0) can.
type SystemConfig struct {
	// Floorplan defaults to the Niagara-8 plan.
	Floorplan *floorplan.Floorplan
	// CoreModel defaults to the paper's 1 GHz / 4 W cores.
	CoreModel power.CoreModel
	// UncoreShare defaults to the paper's 30%.
	UncoreShare float64
	// ThermalParams defaults to thermal.DefaultParams().
	ThermalParams thermal.Params
	// Dt is the thermal step (default the paper's 0.4 ms).
	Dt float64
	// WindowSteps is the DFS horizon in steps (default 250 = 100 ms).
	WindowSteps int
	// TMax is the temperature limit (default 100 °C).
	TMax float64
}

// options converts the legacy zero-value-defaulting config into the
// equivalent option list.
func (c SystemConfig) options() []Option {
	var opts []Option
	if c.Floorplan != nil {
		opts = append(opts, WithFloorplan(c.Floorplan))
	}
	if c.CoreModel != (power.CoreModel{}) {
		opts = append(opts, WithCoreModel(c.CoreModel))
	}
	if c.UncoreShare != 0 {
		opts = append(opts, WithUncoreShare(c.UncoreShare))
	}
	if c.ThermalParams != (thermal.Params{}) {
		opts = append(opts, WithThermalParams(c.ThermalParams))
	}
	dt, steps := c.Dt, c.WindowSteps
	if dt != 0 || steps != 0 {
		if dt == 0 {
			dt = 0.4e-3
		}
		if steps == 0 {
			steps = 250
		}
		opts = append(opts, WithWindow(dt, steps))
	}
	if c.TMax != 0 {
		opts = append(opts, WithTMax(c.TMax))
	}
	return opts
}

// System bundles a modeled chip: floorplan, power models, thermal model
// and the precomputed window response the optimizer consumes.
//
// Deprecated: use Engine, which adds context cancellation, table
// caching and concurrent Sessions on the same chip.
type System struct {
	Config SystemConfig
	Chip   *power.Chip
	Model  *thermal.RCModel
	Disc   *thermal.Discrete
	Window *thermal.WindowResponse

	engine *Engine
}

// NewSystem builds a System; zero-valued config fields take the paper's
// defaults.
//
// Deprecated: use New with options.
func NewSystem(cfg SystemConfig) (*System, error) {
	engine, err := New(cfg.options()...)
	if err != nil {
		return nil, err
	}
	// Reflect the resolved defaults back, preserving the legacy
	// contract that Config reports the effective values.
	cfg.Floorplan = engine.cfg.fp
	cfg.CoreModel = engine.cfg.coreModel
	cfg.UncoreShare = engine.cfg.uncoreShare
	cfg.ThermalParams = engine.cfg.thermalParams
	cfg.Dt = engine.cfg.dt
	cfg.WindowSteps = engine.cfg.windowSteps
	cfg.TMax = engine.cfg.tmax
	return &System{
		Config: cfg,
		Chip:   engine.Chip(),
		Model:  engine.Model(),
		Disc:   engine.Disc(),
		Window: engine.Window(),
		engine: engine,
	}, nil
}

// NewNiagaraSystem builds the paper's evaluation platform with all
// defaults.
//
// Deprecated: use New() — the zero-option Engine is the same platform.
func NewNiagaraSystem() (*System, error) {
	return NewSystem(SystemConfig{})
}

// Engine returns the Engine backing this legacy facade, for callers
// migrating incrementally.
func (s *System) Engine() *Engine { return s.engine }

// Optimize solves one design point (Phase-1 style) at the given
// starting temperature and required average frequency.
//
// Deprecated: use Engine.OptimizeVariant, which takes a context.
func (s *System) Optimize(tstart, ftarget float64, variant core.Variant) (*core.Assignment, error) {
	return s.engine.OptimizeVariant(context.Background(), tstart, ftarget, variant)
}

// GenerateTable runs Phase 1 over the default grids (or the provided
// ones if non-nil). It keeps the legacy contract of returning a fresh
// table per call (callers historically could mutate the result), so it
// deliberately bypasses the engine's shared cache.
//
// Deprecated: use Engine.GenerateTable / Engine.GenerateTableGrid,
// which take a context and share generations through the table cache.
func (s *System) GenerateTable(tstarts, ftargets []float64, variant core.Variant) (*core.Table, error) {
	if tstarts == nil {
		tstarts = core.DefaultTStarts()
	}
	if ftargets == nil {
		ftargets = core.DefaultFTargets(s.Chip.FMax())
	}
	return core.GenerateTable(context.Background(), core.TableSpec{
		Chip:     s.Chip,
		Window:   s.Window,
		TMax:     s.Config.TMax,
		TStarts:  tstarts,
		FTargets: ftargets,
		Variant:  variant,
	})
}

// Controller wraps a Phase-1 table into the run-time controller.
//
// Deprecated: use Engine.Controller or Engine.NewSession.
func (s *System) Controller(table *core.Table) (*core.Controller, error) {
	return core.NewController(table)
}

// Simulate runs a closed-loop simulation of the given policy over the
// trace, recording the named blocks.
//
// Deprecated: use Engine.Simulate, which takes a context and options.
func (s *System) Simulate(policy sim.Policy, trace *workload.Trace, record ...string) (*sim.Result, error) {
	return s.engine.Simulate(context.Background(), policy, trace, RecordBlocks(record...))
}

// ProTempPolicy builds the Pro-Temp policy from a table.
//
// Deprecated: use Engine.ProTempPolicy or a Session's Policy.
func (s *System) ProTempPolicy(table *core.Table) (sim.Policy, error) {
	return s.engine.ProTempPolicy(table)
}

// BasicDFSPolicy builds the reactive baseline at the given threshold.
//
// Deprecated: use Engine.BasicDFSPolicy.
func (s *System) BasicDFSPolicy(threshold float64) (sim.Policy, error) {
	return s.engine.BasicDFSPolicy(threshold)
}

// NoTCPolicy builds the no-temperature-control reference.
//
// Deprecated: use Engine.NoTCPolicy.
func (s *System) NoTCPolicy() sim.Policy {
	return s.engine.NoTCPolicy()
}
