// Package protemp is the public facade of the Pro-Temp reproduction —
// the convex-optimization-based pro-active temperature controller for
// multi-core chips from Murali et al., "Temperature Control of
// High-Performance Multi-core Platforms Using Convex Optimization"
// (DATE 2008).
//
// The heavy lifting lives in the internal packages (floorplan, thermal,
// power, solver, core, workload, sim, experiments); this package wires
// them together for the common case: build a modeled chip, generate the
// Phase-1 frequency table, and run closed-loop simulations. See the
// examples/ directory for end-to-end programs and DESIGN.md for the
// architecture.
package protemp

import (
	"fmt"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/sim"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// SystemConfig describes a modeled platform.
type SystemConfig struct {
	// Floorplan defaults to the Niagara-8 plan.
	Floorplan *floorplan.Floorplan
	// CoreModel defaults to the paper's 1 GHz / 4 W cores.
	CoreModel power.CoreModel
	// UncoreShare defaults to the paper's 30%.
	UncoreShare float64
	// ThermalParams defaults to thermal.DefaultParams().
	ThermalParams thermal.Params
	// Dt is the thermal step (default the paper's 0.4 ms).
	Dt float64
	// WindowSteps is the DFS horizon in steps (default 250 = 100 ms).
	WindowSteps int
	// TMax is the temperature limit (default 100 °C).
	TMax float64
}

func (c SystemConfig) withDefaults() SystemConfig {
	if c.Floorplan == nil {
		c.Floorplan = floorplan.Niagara()
	}
	if c.CoreModel == (power.CoreModel{}) {
		c.CoreModel = power.NiagaraCore()
	}
	if c.UncoreShare == 0 {
		c.UncoreShare = power.UncoreShare
	}
	if c.ThermalParams == (thermal.Params{}) {
		c.ThermalParams = thermal.DefaultParams()
	}
	if c.Dt == 0 {
		c.Dt = 0.4e-3
	}
	if c.WindowSteps == 0 {
		c.WindowSteps = 250
	}
	if c.TMax == 0 {
		c.TMax = 100
	}
	return c
}

// System bundles a modeled chip: floorplan, power models, thermal model
// and the precomputed window response the optimizer consumes.
type System struct {
	Config SystemConfig
	Chip   *power.Chip
	Model  *thermal.RCModel
	Disc   *thermal.Discrete
	Window *thermal.WindowResponse
}

// NewSystem builds a System; zero-valued config fields take the paper's
// defaults.
func NewSystem(cfg SystemConfig) (*System, error) {
	cfg = cfg.withDefaults()
	chip, err := power.NewChip(cfg.Floorplan, cfg.CoreModel, cfg.UncoreShare)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewRC(cfg.Floorplan, cfg.ThermalParams)
	if err != nil {
		return nil, err
	}
	disc, err := model.Discretize(cfg.Dt)
	if err != nil {
		return nil, err
	}
	window, err := disc.Window(cfg.WindowSteps)
	if err != nil {
		return nil, err
	}
	return &System{Config: cfg, Chip: chip, Model: model, Disc: disc, Window: window}, nil
}

// NewNiagaraSystem builds the paper's evaluation platform with all
// defaults.
func NewNiagaraSystem() (*System, error) {
	return NewSystem(SystemConfig{})
}

// Optimize solves one design point (Phase-1 style) at the given
// starting temperature and required average frequency.
func (s *System) Optimize(tstart, ftarget float64, variant core.Variant) (*core.Assignment, error) {
	return core.Solve(&core.Spec{
		Chip:    s.Chip,
		Window:  s.Window,
		TStart:  tstart,
		TMax:    s.Config.TMax,
		FTarget: ftarget,
		Variant: variant,
	})
}

// GenerateTable runs Phase 1 over the default grids (or the provided
// ones if non-nil).
func (s *System) GenerateTable(tstarts, ftargets []float64, variant core.Variant) (*core.Table, error) {
	if tstarts == nil {
		tstarts = core.DefaultTStarts()
	}
	if ftargets == nil {
		ftargets = core.DefaultFTargets(s.Chip.FMax())
	}
	return core.GenerateTable(core.TableSpec{
		Chip:     s.Chip,
		Window:   s.Window,
		TMax:     s.Config.TMax,
		TStarts:  tstarts,
		FTargets: ftargets,
		Variant:  variant,
	})
}

// Controller wraps a Phase-1 table into the run-time controller.
func (s *System) Controller(table *core.Table) (*core.Controller, error) {
	return core.NewController(table)
}

// Simulate runs a closed-loop simulation of the given policy over the
// trace, recording the named blocks.
func (s *System) Simulate(policy sim.Policy, trace *workload.Trace, record ...string) (*sim.Result, error) {
	return sim.Run(sim.Config{
		Chip:         s.Chip,
		Disc:         s.Disc,
		Policy:       policy,
		Trace:        trace,
		Window:       s.Config.Dt * float64(s.Config.WindowSteps),
		TMax:         s.Config.TMax,
		RecordBlocks: record,
	})
}

// ProTempPolicy builds the Pro-Temp policy from a table.
func (s *System) ProTempPolicy(table *core.Table) (sim.Policy, error) {
	ctrl, err := core.NewController(table)
	if err != nil {
		return nil, err
	}
	return &sim.ProTemp{Controller: ctrl}, nil
}

// BasicDFSPolicy builds the reactive baseline at the given threshold.
func (s *System) BasicDFSPolicy(threshold float64) (sim.Policy, error) {
	if threshold <= 0 || threshold > s.Config.TMax {
		return nil, fmt.Errorf("protemp: threshold %g outside (0, %g]", threshold, s.Config.TMax)
	}
	return &sim.BasicDFS{NumCores: s.Chip.NumCores(), FMax: s.Chip.FMax(), Threshold: threshold}, nil
}

// NoTCPolicy builds the no-temperature-control reference.
func (s *System) NoTCPolicy() sim.Policy {
	return &sim.NoTC{NumCores: s.Chip.NumCores(), FMax: s.Chip.FMax()}
}
