package protemp

import (
	"protemp/internal/sense"
	"protemp/internal/sim"
)

// SensorConfig describes one temperature sensor's defect model —
// Gaussian noise, quantization, read delay, dropout, stuck-at and
// drift (see internal/sense). The zero value is a perfect sensor.
type SensorConfig = sense.Config

// Sensing configures a run's imperfect measurement path: per-core
// sensor defects plus the optional state estimator that reconstructs
// the thermal map from the degraded readings. It is pure data and
// JSON-serializable, so the server's session API can carry it.
type Sensing = sim.Sensing

// SenseSummary is the sensing/estimation slice of a sensed run's
// Result: injected-defect counters plus estimator accuracy.
type SenseSummary = sim.SenseSummary

// DefaultNoisySensor returns the reference realistic defect model
// (0.5 °C Gaussian noise, 0.25 °C quantization, 1% dropout) used by
// the noisy fleet scenarios.
func DefaultNoisySensor() SensorConfig { return sense.DefaultNoisy() }

// UniformSensors replicates one sensor config across n cores.
func UniformSensors(n int, c SensorConfig) []SensorConfig { return sense.Uniform(n, c) }

// WithSensors interposes the imperfect sensor bank in one Simulate
// call: policies observe readings produced by the per-core defect
// configs instead of the true temperatures. One config broadcasts to
// every core; the seed fixes the defect sequence so runs replay
// bit-identically. Combine with WithEstimator to reconstruct the map.
func WithSensors(seed int64, sensors ...SensorConfig) SimOption {
	return func(c *sim.Config) {
		sn := ensureSensing(c)
		sn.Seed = seed
		sn.Sensors = append([]SensorConfig(nil), sensors...)
	}
}

// WithEstimator selects the state observer run between the sensors
// and the policy: "kalman" (steady-state Kalman filter) or
// "luenberger" (fixed-gain observer). "none" — or omitting the option
// — feeds policies the raw readings, in which case online sessions
// degrade to their conservative uniform-start formulation. Implies
// sensing even without WithSensors (perfect sensors, estimator on).
func WithEstimator(kind string) SimOption {
	return func(c *sim.Config) { ensureSensing(c).Estimator = kind }
}

// WithEstimatorModelError mis-scales the estimator's thermal model by
// the gain factor (a uniform 1/gain heat-capacity error) while the
// simulator keeps integrating the true model — the wrong-RC
// model-mismatch study. 0 or 1 keeps the exact model.
func WithEstimatorModelError(gain float64) SimOption {
	return func(c *sim.Config) { ensureSensing(c).ModelErr = gain }
}

// WithSensing installs a fully-specified sensing configuration,
// replacing anything accumulated by the options above — the
// escape hatch for serialized configs (fleet scenarios, the server's
// session API).
func WithSensing(sn *Sensing) SimOption {
	return func(c *sim.Config) { c.Sensing = sn }
}

func ensureSensing(c *sim.Config) *sim.Sensing {
	if c.Sensing == nil {
		c.Sensing = &sim.Sensing{}
	}
	return c.Sensing
}
