package protemp

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark times one full regeneration of its figure at the Quick
// fidelity (1 ms thermal step, 100 ms windows, reduced grids) and logs
// the same rows/series the paper reports; cmd/protemp-experiments runs
// the identical experiments at the full paper fidelity.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"protemp/internal/core"
	"protemp/internal/experiments"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/sense"
	"protemp/internal/sim"
	"protemp/internal/solver"
	"protemp/internal/thermal"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchErr   error
)

func setupBench(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = experiments.NewSetup(context.Background(), experiments.Quick())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

func renderOnce(b *testing.B, i int, render func(io.Writer)) {
	if i != 0 {
		return
	}
	var sb strings.Builder
	render(&sb)
	b.Log("\n" + sb.String())
}

// BenchmarkFig1BasicDFSTrace regenerates the Basic-DFS temperature
// snapshot of processor P1 (paper Fig. 1).
func BenchmarkFig1BasicDFSTrace(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig2ProTempTrace regenerates the Pro-Temp snapshot (Fig. 2).
func BenchmarkFig2ProTempTrace(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig6aTimeInBandsMixed regenerates the mixed-workload
// time-in-band table (Fig. 6a).
func BenchmarkFig6aTimeInBandsMixed(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6a(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig6bTimeInBandsCompute regenerates the compute-intensive
// time-in-band table (Fig. 6b).
func BenchmarkFig6bTimeInBandsCompute(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6b(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig7WaitingTime regenerates the normalized waiting-time
// comparison (Fig. 7).
func BenchmarkFig7WaitingTime(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig8GradientTrace regenerates the P1/P2 Pro-Temp trace
// (Fig. 8).
func BenchmarkFig8GradientTrace(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig9UniformVsVariable regenerates the supported-frequency
// sweep (Fig. 9).
func BenchmarkFig9UniformVsVariable(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig10PerCoreFrequency regenerates the per-core frequency
// sweep (Fig. 10).
func BenchmarkFig10PerCoreFrequency(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig11TaskAssignment regenerates the assignment-policy study
// (Fig. 11 / §5.4).
func BenchmarkFig11TaskAssignment(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig11(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(b, i, func(w io.Writer) { r.Render(w) })
	}
}

// fleetBenchSpec is the batch the fleet-runner benchmarks execute:
// 3 scenarios × 2 policies, one of them table-driven so the Phase-1
// cache is on the critical path.
func fleetBenchSpec(workers int) FleetSpec {
	return FleetSpec{
		Scenarios:  []string{"mixed", "bursty", "adversarial"},
		Policies:   []FleetPolicy{{Kind: "protemp"}, {Kind: "basic-dfs"}},
		Seeds:      []int64{1},
		Workers:    workers,
		Horizon:    2,
		MaxSimTime: 6,
	}
}

func fleetBenchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(
		WithWindow(1e-3, 100),
		WithTableGrid([]float64{47, 100}, []float64{250e6, 500e6, 750e6}),
	)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFleetRunner measures the batch evaluation harness along the
// two axes that matter for serving: worker parallelism (1 vs
// GOMAXPROCS) and table-cache temperature. The warm cases share one
// engine whose Phase-1 table is already generated, so they measure
// pure simulation fan-out; the cold cases pay one generation per
// iteration on a fresh engine, so warm-vs-cold is the measurable
// speedup the shared cache buys a batch.
func BenchmarkFleetRunner(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("workers%d", workers)
		if workers == 0 {
			name = "workersMax"
		}
		b.Run("warm/"+name, func(b *testing.B) {
			e := fleetBenchEngine(b)
			if _, err := e.GenerateTable(ctx); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(ctx, e, fleetBenchSpec(workers))
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 6 {
					b.Fatalf("completed %d of 6", res.Completed)
				}
			}
		})
		b.Run("cold/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := fleetBenchEngine(b) // fresh engine: empty table cache
				res, err := RunFleet(ctx, e, fleetBenchSpec(workers))
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 6 {
					b.Fatalf("completed %d of 6", res.Completed)
				}
				if gen := e.CacheStats().Generations; gen != 1 {
					b.Fatalf("cold engine ran %d generations, want 1", gen)
				}
			}
		})
	}
}

// stepBenchEngine builds the engine the online-step benchmarks share:
// quick fidelity (1 ms steps, 100 ms windows), the paper's chip.
func stepBenchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(WithWindow(1e-3, 100))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// stepBenchState returns the i-th window's observed state: a mildly
// non-uniform thermal map and a slowly wandering target, the shape of
// consecutive windows on a live stream (close enough for warm starts
// to engage, different enough that every offset rewrite is real).
func stepBenchState(e *Engine, i int) State {
	nb := e.Floorplan().NumBlocks()
	m := make([]float64, nb)
	base := 58 + 3*float64(i%5)
	for j := range m {
		m[j] = base + 2*float64(j%4)
	}
	return State{
		MaxCoreTemp:  base + 6,
		RequiredFreq: (0.45 + 0.02*float64(i%6)) * e.Chip().FMax(),
		BlockTemps:   m,
	}
}

// BenchmarkSessionStep measures the online MPC hot path — one Step per
// DFS window — along the two axes that bound a control plane's
// sessions-per-node: warm-started per-session solver state versus the
// cold per-window path (a fresh problem build plus the cold start
// ladder, what Step cost before the warm state existed), and one
// session versus GOMAXPROCS concurrent independent sessions.
func BenchmarkSessionStep(b *testing.B) {
	ctx := context.Background()
	b.Run("cold/sessions1", func(b *testing.B) {
		e := stepBenchEngine(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := stepBenchState(e, i)
			a, err := core.Solve(&core.Spec{
				Chip: e.Chip(), Window: e.Window(), TMax: e.TMax(),
				FTarget: st.RequiredFreq, T0: st.BlockTemps,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !a.Feasible {
				b.Fatal("benchmark state unexpectedly infeasible")
			}
		}
	})
	b.Run("warm/sessions1", func(b *testing.B) {
		e := stepBenchEngine(b)
		s, err := e.NewOnlineSession()
		if err != nil {
			b.Fatal(err)
		}
		// Prime the warm chain so the measured steady state is the
		// serving path, not the first cold solve.
		if _, err := s.Step(ctx, stepBenchState(e, 0)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if hits, _ := s.WarmStats(); b.N > 4 && hits == 0 {
			b.Fatal("warm benchmark never warm-started")
		}
	})
	b.Run("warm/gradient", func(b *testing.B) {
		// The gradient variant's warm serving path: dominated by the
		// pairwise-row Hessian assembly the structured (SYRK-batched)
		// backend accelerates, and by the barrier schedule (the
		// variant-aware μ keeps every centering inside Newton's fast
		// region — see core.solveLadder).
		e, err := New(WithWindow(1e-3, 100), WithVariant(core.VariantGradient))
		if err != nil {
			b.Fatal(err)
		}
		s, err := e.NewOnlineSession()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Step(ctx, stepBenchState(e, 0)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if hits, _ := s.WarmStats(); b.N > 4 && hits == 0 {
			b.Fatal("gradient warm benchmark never warm-started")
		}
	})
	b.Run("warm/sessionsN", func(b *testing.B) {
		e := stepBenchEngine(b)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			// One session per goroutine: sessions are the unit of solve
			// parallelism (a shared session serializes on its warm state).
			s, err := e.NewOnlineSession()
			if err != nil {
				b.Fatal(err)
			}
			i := 0
			for pb.Next() {
				if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// BenchmarkStepTraced measures the flight recorder's overhead on the
// warm online Step: "off" is the default engine (the nil recorder
// must cost nothing — the CI gate watches this pair drift apart),
// "on" pays the per-step trace capture.
func BenchmarkStepTraced(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"off", nil},
		{"on", []Option{WithFlightRecorder(32, 8)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := New(append([]Option{WithWindow(1e-3, 100)}, mode.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			s, err := e.NewOnlineSession()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Step(ctx, stepBenchState(e, 0)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// dmpcBenchEngine builds a quick-fidelity engine on the requested
// floorplan (rows == 0 keeps the paper's Niagara plan) with the given
// ADMM worker bound and cluster count (0 = defaults).
func dmpcBenchEngine(b *testing.B, rows, cols, clusters, admmWorkers int) *Engine {
	b.Helper()
	opts := []Option{WithWindow(1e-3, 100), WithADMMWorkers(admmWorkers)}
	if rows > 0 {
		fp, err := floorplan.ManyCore(rows, cols)
		if err != nil {
			b.Fatal(err)
		}
		opts = append(opts, WithFloorplan(fp))
	}
	if clusters > 0 {
		opts = append(opts, WithClusters(clusters))
	}
	e, err := New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkDMPCStep races the centralized online MPC step against the
// distributed (ADMM cluster-consensus) step across chip sizes — the
// paper's 8-core Niagara plan and synthetic 64- and 256-core grids —
// and across the distributed mode's worker-pool axis (1 vs GOMAXPROCS
// parallel cluster solves). The centralized rung is skipped at 256
// cores: one dense full-chip compile plus per-window solves at that
// size is the intractable baseline the distributed subsystem exists to
// avoid (DESIGN.md §10).
func BenchmarkDMPCStep(b *testing.B) {
	ctx := context.Background()
	cases := []struct {
		name       string
		rows, cols int // 0 = Niagara-8
		clusters   int // 0 = engine default (one per 8 cores)
	}{
		// At 8 cores the default partition is a single cluster, which
		// degenerates to the centralized problem; 2 clusters makes the
		// consensus layer (the overhead being measured) actually engage.
		{"cores8", 0, 0, 2},
		{"cores64", 8, 8, 0},
		{"cores256", 16, 16, 0},
	}
	step := func(b *testing.B, e *Engine, s *Session) {
		b.Helper()
		// Prime so the measured steady state is the warm serving path.
		if _, err := s.Step(ctx, stepBenchState(e, 0)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, tc := range cases {
		b.Run(tc.name+"/central", func(b *testing.B) {
			if tc.rows >= 16 {
				b.Skip("dense centralized solve is the intractable 256-core baseline")
			}
			e := dmpcBenchEngine(b, tc.rows, tc.cols, 0, 0)
			s, err := e.NewOnlineSession()
			if err != nil {
				b.Fatal(err)
			}
			step(b, e, s)
		})
		for _, workers := range []int{1, 0} {
			name := "workers1"
			if workers == 0 {
				name = "workersMax"
			}
			b.Run(tc.name+"/dmpc/"+name, func(b *testing.B) {
				e := dmpcBenchEngine(b, tc.rows, tc.cols, tc.clusters, workers)
				s, err := e.NewDMPCSession()
				if err != nil {
					b.Fatal(err)
				}
				step(b, e, s)
			})
		}
	}
}

// BenchmarkSensedStep times one DFS window through the measurement
// path at its three service levels: perfect sensing (the plain Stepper,
// the pre-observer baseline), noisy sensors served raw, and noisy
// sensors reconstructed by the steady-state Kalman filter. The spread
// between the first and last case is the per-window price of the whole
// sense→estimate chain — the budget an online deployment pays to
// tolerate imperfect sensors.
func BenchmarkSensedStep(b *testing.B) {
	s := setupBench(b)
	noisy := []sense.Config{sense.DefaultNoisy()}
	for _, tc := range []struct {
		name    string
		sensing *sim.Sensing
	}{
		{"perfect", nil},
		{"noisy/raw", &sim.Sensing{Sensors: noisy, Seed: 1}},
		{"noisy/kalman", &sim.Sensing{Sensors: noisy, Seed: 1, Estimator: "kalman"}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := sim.Config{
				Chip:    s.Chip,
				Disc:    s.Disc,
				Policy:  &sim.NoTC{NumCores: s.Chip.NumCores(), FMax: s.Chip.FMax()},
				Trace:   s.Heavy,
				TMax:    experiments.TMax,
				Sensing: tc.sensing,
			}
			mk := func() sim.WindowStepper {
				st, err := sim.NewWindowStepper(cfg)
				if err != nil {
					b.Fatal(err)
				}
				return st
			}
			stepper := mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if stepper.Done() {
					b.StopTimer()
					stepper = mk()
					b.StartTimer()
				}
				if err := stepper.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveSinglePoint times one Phase-1 convex solve — the
// paper's §5.1 "less than 2 minutes with CVX" data point.
func BenchmarkSolveSinglePoint(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.Solve(s.Spec(67, 500e6, core.VariantVariable))
		if err != nil {
			b.Fatal(err)
		}
		if !a.Feasible {
			b.Fatal("design point unexpectedly infeasible")
		}
	}
}

// BenchmarkGenerateTable times full Phase-1 table generation — the
// paper's §5.1 "few hours" data point.
func BenchmarkGenerateTable(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := core.GenerateTable(context.Background(), core.TableSpec{
			Chip:     s.Chip,
			Window:   s.Window,
			TMax:     experiments.TMax,
			TStarts:  s.Fid.TableTStarts,
			FTargets: s.Fid.TableFTargets,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("table: %d solves, %d feasible, %d Newton iterations (%d warm hits costing %d iters, ~%d saved, %v solve wall)",
				tbl.Stats.Solves, tbl.Stats.Feasible, tbl.Stats.NewtonIters,
				tbl.Stats.WarmHits, tbl.Stats.WarmIters, tbl.Stats.IterationsSaved(),
				time.Duration(tbl.Stats.WallNanos).Round(time.Millisecond))
		}
	}
}

// BenchmarkThermalStep times the simulator's inner loop: one 0.4 ms
// thermal step of the 15-node Niagara network.
func BenchmarkThermalStep(b *testing.B) {
	model, err := thermal.NewRC(setupBench(b).Chip.Floorplan(), thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	disc, err := model.Discretize(0.4e-3)
	if err != nil {
		b.Fatal(err)
	}
	n := disc.NumNodes()
	t0 := model.UniformStart(60)
	next := linalg.NewVector(n)
	p := linalg.Constant(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disc.Step(next, t0, p)
		t0, next = next, t0
	}
}

// BenchmarkBarrierSolve times the raw interior-point solver on a
// representative 2000-constraint Pro-Temp program.
func BenchmarkBarrierSolve(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		a, err := core.Solve(s.Spec(87, 600e6, core.VariantVariable))
		if err != nil {
			b.Fatal(err)
		}
		_ = a
	}
}

// BenchmarkUniformBisect times the scalar cross-check path.
func BenchmarkUniformBisect(b *testing.B) {
	s := setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveUniformBisect(s.Spec(87, 400e6, core.VariantUniform)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseI times strict-feasibility recovery from an infeasible
// start.
func BenchmarkPhaseI(b *testing.B) {
	prob := &solver.Problem{Objective: &solver.Affine{A: linalg.Constant(8, 1)}}
	for j := 0; j < 8; j++ {
		lo := linalg.NewVector(8)
		lo[j] = -1
		hi := linalg.NewVector(8)
		hi[j] = 1
		prob.Constraints = append(prob.Constraints,
			&solver.Affine{A: lo, B: 1},
			&solver.Affine{A: hi, B: -3},
		)
	}
	start := linalg.Constant(8, -25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.PhaseI(prob, start, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGradStride ablates the gradient-constraint stride
// (Spec.GradStride): denser pairwise constraints buy a marginally
// tighter bound at a steep solve-time cost, which is why the default
// strides.
func BenchmarkAblationGradStride(b *testing.B) {
	s := setupBench(b)
	for _, stride := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("stride%d", stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := s.Spec(60, 500e6, core.VariantGradient)
				spec.GradStride = stride
				a, err := core.Solve(spec)
				if err != nil {
					b.Fatal(err)
				}
				if !a.Feasible {
					b.Fatal("ablation point must be feasible")
				}
				if i == 0 {
					b.ReportMetric(a.TGrad, "tgrad°C")
				}
			}
		})
	}
}

// BenchmarkAblationTableResolution ablates the Phase-1 frequency-grid
// granularity: coarser tables are cheaper to generate but quantize the
// controller's frequency choices, inflating task waiting times.
func BenchmarkAblationTableResolution(b *testing.B) {
	s := setupBench(b)
	trace := s.Heavy
	for _, cols := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("cols%d", cols), func(b *testing.B) {
			targets := make([]float64, cols)
			for i := range targets {
				targets[i] = float64(i+1) / float64(cols) * 1e9
			}
			for i := 0; i < b.N; i++ {
				tbl, err := core.GenerateTable(context.Background(), core.TableSpec{
					Chip:     s.Chip,
					Window:   s.Window,
					TMax:     experiments.TMax,
					TStarts:  s.Fid.TableTStarts,
					FTargets: targets,
				})
				if err != nil {
					b.Fatal(err)
				}
				ctrl, err := core.NewController(tbl)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(context.Background(), sim.Config{
					Chip:   s.Chip,
					Disc:   s.Disc,
					Policy: &sim.ProTemp{Controller: ctrl},
					Trace:  trace,
					TMax:   experiments.TMax,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.MaxCoreTemp > experiments.TMax+0.01 {
					b.Fatalf("guarantee broken at %d columns: %.2f", cols, res.MaxCoreTemp)
				}
				if i == 0 {
					b.ReportMetric(res.Wait.Mean(), "wait_s")
				}
			}
		})
	}
}
