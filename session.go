package protemp

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"protemp/internal/core"
	"protemp/internal/dmpc"
	"protemp/internal/linalg"
	"protemp/internal/obs"
	"protemp/internal/sim"
)

// State is what a control session observes at a DFS boundary: the
// sensor summary the paper's run-time phase consumes.
type State struct {
	// MaxCoreTemp is the hottest core sensor reading in °C — the single
	// value the paper's table lookup keys on.
	MaxCoreTemp float64
	// RequiredFreq is the average frequency (Hz) needed to clear the
	// pending work within the next window.
	RequiredFreq float64
	// BlockTemps optionally holds the full per-block thermal map
	// (length NumBlocks, °C). Table sessions ignore it; online (MPC)
	// sessions solve on it when present, recovering the headroom the
	// single-value rounding gives away.
	BlockTemps []float64
	// SensingDegraded reports that this window's state is pure
	// prediction or held-over readings (every sensor dropped out).
	// Online sessions drop their warm solver state on it so a blind
	// window's optimum never seeds the next real solve; table sessions
	// ignore it.
	SensingDegraded bool
}

// Session is a reusable, goroutine-safe control session: configure the
// engine once, then drive any number of Step calls — one per DFS
// window — from any number of goroutines. A table session answers from
// the cached Phase-1 table in O(log n); an online session solves the
// convex program on the observed thermal map each step.
//
// An online session owns warm solver state — a problem compiled once
// at NewOnlineSession, a reusable solver workspace, and the previous
// window's optimum as the next window's barrier seed — so concurrent
// Step calls remain safe but serialize their solves on the session;
// callers needing solve parallelism open one session per stream.
type Session struct {
	engine *Engine
	ctrl   *core.Controller // table-driven when non-nil

	// solveMu serializes online and distributed solves: the compiled
	// problem instances, workspaces and warm state all mutate in place.
	solveMu sync.Mutex
	online  *core.OnlineSolver // online (MPC) when non-nil
	dsolver *dmpc.Solver       // distributed (ADMM) when non-nil

	mu          sync.Mutex
	steps       uint64
	downgrades  uint64
	idles       uint64
	solves      uint64 // online: window solves; dmpc: cluster subproblem solves
	warmHits    uint64 // online solves carried by the previous optimum
	warmRejects uint64 // online solves where the warm seed fell back cold
	outerIters  uint64 // dmpc only: consensus iterations across all steps
	fallbacks   uint64 // dmpc only: windows decided by a fallback rung
}

// NewSession opens a table-driven control session on the engine's
// configured grid and variant. The Phase-1 table comes from the
// engine's cache: concurrent NewSession calls on one configuration
// trigger exactly one generation. Cancelling ctx aborts a table
// generation in progress.
func (e *Engine) NewSession(ctx context.Context) (*Session, error) {
	table, err := e.GenerateTable(ctx)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(table)
	if err != nil {
		return nil, err
	}
	return &Session{engine: e, ctrl: ctrl}, nil
}

// NewSessionFromTable opens a session on an explicit table (for
// example one deserialized from disk).
func (e *Engine) NewSessionFromTable(table *core.Table) (*Session, error) {
	ctrl, err := core.NewController(table)
	if err != nil {
		return nil, err
	}
	return &Session{engine: e, ctrl: ctrl}, nil
}

// NewOnlineSession opens a model-predictive session that solves the
// convex program at every Step on the full thermal map — no Phase-1
// table, one interior-point solve per window. The problem structure is
// compiled here, once: every Step after that rewrites only the
// state-dependent constraint offsets and warm-starts the barrier from
// the previous window's optimum (cold ladder as fallback), which is
// what makes the per-window solve cheap enough to serve live traffic.
func (e *Engine) NewOnlineSession() (*Session, error) {
	ol, err := core.NewOnlineSolver(core.OnlineSpec{
		Chip:    e.chip,
		Window:  e.window,
		TMax:    e.cfg.tmax,
		Variant: e.cfg.variant,
	})
	if err != nil {
		return nil, err
	}
	return &Session{engine: e, online: ol}, nil
}

// NewDMPCSession opens a distributed model-predictive session: the
// chip partitioned into thermally-coupled clusters (WithClusters, or
// one per 8 cores by default), one warm-startable subproblem compiled
// per cluster here, once. Every Step then solves the clusters in
// parallel under ADMM-style boundary-temperature consensus — the
// many-core mode, where compiling or solving the dense full-chip
// program is the cost being avoided. On a single-cluster partition it
// degenerates to exactly the online session's decisions.
func (e *Engine) NewDMPCSession() (*Session, error) {
	sol, err := e.newDMPCSolver(0, e.cfg.variant, 0)
	if err != nil {
		return nil, err
	}
	return &Session{engine: e, dsolver: sol}, nil
}

// Online reports whether the session solves the centralized program
// online; false for table-driven and distributed sessions.
func (s *Session) Online() bool { return s.online != nil }

// Mode names the session's decision path: "table", "online" or "dmpc".
func (s *Session) Mode() string {
	switch {
	case s.online != nil:
		return "online"
	case s.dsolver != nil:
		return "dmpc"
	default:
		return "table"
	}
}

// Clusters returns the distributed session's partition size, or zero
// for table and online sessions.
func (s *Session) Clusters() int {
	if s.dsolver == nil {
		return 0
	}
	return s.dsolver.Clusters()
}

// ADMMStats reports a distributed session's consensus work: outer
// iterations accumulated across steps and windows decided by a
// fallback rung. Both are zero for table and online sessions.
func (s *Session) ADMMStats() (outerIters, fallbacks uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outerIters, s.fallbacks
}

// Table returns the session's Phase-1 table, or nil for an online
// session.
func (s *Session) Table() *core.Table {
	if s.ctrl == nil {
		return nil
	}
	return s.ctrl.Table()
}

// Stats reports session activity: windows stepped, downgraded
// decisions (required frequency unsupportable, a lower point
// substituted), idle windows, and — for online sessions — convex
// solves performed.
func (s *Session) Stats() (steps, downgrades, idles, solves uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps, s.downgrades, s.idles, s.solves
}

// WarmStats reports an online session's warm-start effectiveness:
// solves carried by the previous window's re-centered optimum versus
// solves where a previous optimum existed but the seed was rejected
// and the cold start ladder ran. Both are zero for table sessions and
// for a session's first solve (nothing to seed from).
func (s *Session) WarmStats() (hits, rejects uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warmHits, s.warmRejects
}

// Step decides the per-core frequency command (Hz, length NumCores)
// for the next DFS window from the observed state. It is safe to call
// from multiple goroutines; each call is one window decision.
// Cancelling ctx aborts an online solve at its next Newton iteration;
// table lookups are effectively instant but still honor an
// already-cancelled context.
func (s *Session) Step(ctx context.Context, st State) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.ctrl != nil {
		return s.stepTable(st), nil
	}
	if s.dsolver != nil {
		return s.stepDMPC(ctx, st)
	}
	return s.stepOnline(ctx, st)
}

// stepDMPC decides one window through the distributed solver. The
// downgrade ladder (bisect, else idle) runs per cluster inside Solve;
// here the session only prepares the target, honors the degraded-
// sensing invalidation contract, and folds the consensus stats into
// the session counters and the engine's dmpc_* instruments.
func (s *Session) stepDMPC(ctx context.Context, st State) ([]float64, error) {
	e := s.engine
	fmax := e.chip.FMax()
	required := st.RequiredFreq
	if math.IsNaN(required) || required < 0 {
		required = 0
	}
	if required > fmax {
		required = fmax
	}
	if required > 0 && required < 0.1*fmax {
		required = 0.1 * fmax
	}
	if st.BlockTemps != nil && len(st.BlockTemps) != e.cfg.fp.NumBlocks() {
		return nil, fmt.Errorf("protemp: state has %d block temps for %d blocks",
			len(st.BlockTemps), e.cfg.fp.NumBlocks())
	}

	s.mu.Lock()
	s.steps++
	s.mu.Unlock()

	s.solveMu.Lock()
	defer s.solveMu.Unlock()

	// A fully-degraded window solves on guessed state: run it, but drop
	// every cluster's warm optimum and the consensus duals on both sides
	// so the blind window neither inherits nor seeds warm state.
	if st.SensingDegraded {
		s.dsolver.Invalidate()
		defer s.dsolver.Invalidate()
	}

	// Tracing: the recorder install/teardown and the trace itself exist
	// only on the enabled branch, so a flight-less engine pays one nil
	// check here. The solver holds the recorder only for the duration of
	// this step (caller holds solveMu).
	if fr := s.engine.flight; fr != nil {
		tr := fr.StartStep("dmpc")
		s.dsolver.SetRecorder(tr)
		freqs, err := s.solveDMPCWindow(ctx, st, required)
		s.dsolver.SetRecorder(nil)
		fr.EndStep(tr, err)
		return freqs, err
	}
	return s.solveDMPCWindow(ctx, st, required)
}

// solveDMPCWindow runs one distributed window solve (caller holds
// solveMu) and folds the consensus stats into the session counters and
// the engine's dmpc_* instruments.
func (s *Session) solveDMPCWindow(ctx context.Context, st State, required float64) ([]float64, error) {
	start := time.Now()
	a, stats, err := s.dsolver.Solve(ctx, st.MaxCoreTemp, st.BlockTemps, required)
	elapsed := time.Since(start)
	s.mu.Lock()
	s.solves += uint64(stats.ClusterSolves)
	s.warmHits += uint64(stats.WarmHits)
	s.warmRejects += uint64(stats.WarmRejects)
	s.downgrades += uint64(stats.Downgrades)
	s.idles += uint64(stats.Idles)
	s.outerIters += uint64(stats.OuterIters)
	if stats.Fallback {
		s.fallbacks++
	}
	s.mu.Unlock()
	s.engine.observeDMPCStep(elapsed, stats, err)
	if err != nil {
		return nil, err
	}
	return a.Freqs, nil
}

func (s *Session) stepTable(st State) []float64 {
	d := s.ctrl.Decide(st.MaxCoreTemp, st.RequiredFreq)
	s.mu.Lock()
	s.steps++
	if d.Downgraded {
		s.downgrades++
	}
	if d.Idle {
		s.idles++
	}
	s.mu.Unlock()
	return d.Freqs
}

// stepOnline mirrors sim.ProTempOnline's decision rule with context
// plumbed through: solve at the (floored) required target, and if that
// is unsupportable from the observed map, bisect the largest
// supportable uniform target and re-solve just inside it. Solves run
// on the session's persistent warm state under solveMu; a cancelled or
// failed solve invalidates that state (never the session), so the next
// Step under a live context performs a correct cold solve.
func (s *Session) stepOnline(ctx context.Context, st State) ([]float64, error) {
	e := s.engine
	fmax := e.chip.FMax()
	required := st.RequiredFreq
	if math.IsNaN(required) || required < 0 {
		required = 0
	}
	if required > fmax {
		required = fmax
	}
	if required > 0 && required < 0.1*fmax {
		required = 0.1 * fmax
	}
	if st.BlockTemps != nil && len(st.BlockTemps) != e.cfg.fp.NumBlocks() {
		return nil, fmt.Errorf("protemp: state has %d block temps for %d blocks",
			len(st.BlockTemps), e.cfg.fp.NumBlocks())
	}

	s.mu.Lock()
	s.steps++
	s.mu.Unlock()

	s.solveMu.Lock()
	defer s.solveMu.Unlock()

	// A fully-degraded sensing window means this solve runs on guessed
	// state: perform it (idling blind is worse — the prediction is the
	// best available map) but never let its optimum warm-start the next
	// real window.
	if st.SensingDegraded {
		s.online.Invalidate()
		defer s.online.Invalidate()
	}

	// Tracing mirrors stepDMPC: recorder install/teardown only on the
	// enabled branch, so the disabled hot path pays one nil check and
	// allocates nothing.
	if fr := s.engine.flight; fr != nil {
		tr := fr.StartStep("online")
		s.online.SetRecorder(tr)
		freqs, err := s.solveOnlineWindow(ctx, st, required, tr)
		s.online.SetRecorder(nil)
		fr.EndStep(tr, err)
		return freqs, err
	}
	return s.solveOnlineWindow(ctx, st, required, nil)
}

// solveOnlineWindow runs one centralized window decision (caller holds
// solveMu): solve at the required target, and if that is unsupportable
// walk the bisect-downgrade ladder. A non-nil tr additionally records
// the bisection as a span and marks the step a fallback.
func (s *Session) solveOnlineWindow(ctx context.Context, st State, required float64, tr *obs.Trace) ([]float64, error) {
	e := s.engine
	n := e.chip.NumCores()
	a, err := s.solveOnline(ctx, st.MaxCoreTemp, st.BlockTemps, required)
	if err != nil {
		return nil, err
	}
	if a.Feasible {
		return a.Freqs, nil
	}

	// Unsupportable target: fall back to the largest supportable
	// uniform frequency (the run-time analogue of the paper's "next
	// lower frequency point" rule), idling the window if even that
	// fails. The bisection honors ctx too: a session cancelled at any
	// point inside Step returns promptly and remains safe to Step
	// again under a live context — no counter is left inconsistent and
	// the warm state is invalidated, never corrupted.
	spec := e.spec(st.MaxCoreTemp, required, e.cfg.variant)
	spec.T0 = st.BlockTemps
	if tr != nil {
		tr.Fallback("bisect-downgrade")
		tr.SolveStart(required)
		tr.Rung("bisect")
	}
	maxF, _, err := core.SolveUniformBisectContext(ctx, spec)
	if tr != nil {
		tr.SolveEnd(maxF > 0, err)
	}
	if err != nil {
		return nil, err
	}
	idle := make([]float64, n)
	if maxF <= 0 {
		s.noteIdle()
		return idle, nil
	}
	s.mu.Lock()
	s.downgrades++
	s.mu.Unlock()
	a, err = s.solveOnline(ctx, st.MaxCoreTemp, st.BlockTemps, math.Min(required, 0.98*maxF))
	if err != nil {
		return nil, err
	}
	if !a.Feasible {
		s.noteIdle()
		return idle, nil
	}
	return a.Freqs, nil
}

// solveOnline runs one warm-capable solve (caller holds solveMu),
// folding its latency and warm-start outcome into the session counters
// and the engine's step_* instruments.
func (s *Session) solveOnline(ctx context.Context, tstart float64, t0 []float64, ftarget float64) (*core.Assignment, error) {
	start := time.Now()
	a, stats, err := s.online.Solve(ctx, tstart, t0, ftarget)
	elapsed := time.Since(start)
	s.mu.Lock()
	s.solves++
	if stats.Warm {
		s.warmHits++
	}
	if stats.WarmRejected {
		s.warmRejects++
	}
	s.mu.Unlock()
	s.engine.observeStepSolve(elapsed, stats, err)
	return a, err
}

func (s *Session) noteIdle() {
	s.mu.Lock()
	s.idles++
	s.mu.Unlock()
}

// InvalidateWarm drops an online session's warm solver state so the
// next Step performs a cold solve. It is the explicit spelling of what
// a SensingDegraded state does implicitly — for callers that learn of
// a sensing fault out of band (a stream gap, a sensor health alarm)
// rather than through the per-window flag. A table session has no warm
// state; the call is a no-op.
func (s *Session) InvalidateWarm() {
	switch {
	case s.online != nil:
		s.solveMu.Lock()
		s.online.Invalidate()
		s.solveMu.Unlock()
	case s.dsolver != nil:
		s.solveMu.Lock()
		s.dsolver.Invalidate()
		s.solveMu.Unlock()
	}
}

// Policy adapts the session into a sim.Policy so it can drive
// Engine.Simulate or a sim.Stepper. Pass the same ctx given to
// Simulate: each window's Step runs under it, so cancellation reaches
// an online session's in-flight solve rather than waiting for the next
// window boundary. Decide never fails: on a solve error (including
// cancellation) the window is idled, which is always thermally safe,
// and the simulator's own boundary check surfaces ctx.Err().
func (s *Session) Policy(ctx context.Context) sim.Policy {
	if ctx == nil {
		ctx = context.Background()
	}
	return sessionPolicy{s: s, ctx: ctx}
}

type sessionPolicy struct {
	s   *Session
	ctx context.Context
}

// Name implements sim.Policy.
func (p sessionPolicy) Name() string {
	switch p.s.Mode() {
	case "online":
		return "Pro-Temp-Session-Online"
	case "dmpc":
		return "Pro-Temp-Session-DMPC"
	default:
		return "Pro-Temp-Session"
	}
}

// Decide implements sim.Policy.
func (p sessionPolicy) Decide(st sim.WindowState) linalg.Vector {
	freqs, err := p.s.Step(p.ctx, State{
		MaxCoreTemp:     st.MaxCoreTemp,
		RequiredFreq:    st.RequiredFreq,
		BlockTemps:      st.BlockTemps,
		SensingDegraded: st.SensingDegraded,
	})
	if err != nil {
		return linalg.NewVector(p.s.engine.chip.NumCores())
	}
	return linalg.VectorOf(freqs...)
}
